"""Shared configuration for the paper-artifact benchmark harness.

Each benchmark module regenerates one table/figure of the paper's
evaluation at full scale (all 18 workloads), times the run via
pytest-benchmark, asserts the paper's qualitative shape, and writes the
rendered artifact to ``benchmarks/results/<id>.txt`` (the inputs to
EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Trace length per workload for the timing experiments.  Large enough for
# warmed caches and stable statistics, small enough that the whole harness
# finishes in minutes.
BENCH_NUM_OPS = int(os.environ.get("SECPB_BENCH_OPS", "40000"))
SWEEP_NUM_OPS = int(os.environ.get("SECPB_SWEEP_OPS", "25000"))

# Worker processes per experiment sweep (repro.analysis.runner).  The
# default keeps pytest-benchmark timings comparable to older runs; set
# SECPB_BENCH_JOBS=N to regenerate the whole harness N-core fast — the
# rendered artifacts are bit-identical either way.
BENCH_JOBS = int(os.environ.get("SECPB_BENCH_JOBS", "1"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "quick: fast smoke subset exercising the parallel runner "
        "(run with `pytest benchmarks -m quick`)",
    )


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write one rendered artifact to benchmarks/results/<name>.txt."""

    def _save(name: str, text: str) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        return path

    return _save
