"""Quick serve smoke: the serving-frontend gate on every PR.

Marked ``quick`` so CI (and ``make ci``) exercises the in-process
serving engine in seconds: a 100-request seeded burst against an
undersized queue must partition into accepted/shed deterministically,
every accepted result must be byte-identical to running the same jobs
directly through :func:`repro.analysis.runner.run_jobs`, and a drain
must journal the queued remainder so :func:`repro.serve.execute_drained`
replays it bit-for-bit.  The socket transport and SIGTERM path ride the
same core and are covered end-to-end by ``tools/serve_smoke.sh``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.runner import run_jobs
from repro.serve import (
    InProcessClient,
    ServeConfig,
    ServerCore,
    build_jobs,
    execute_drained,
    results_payload,
    seeded_burst,
)

pytestmark = pytest.mark.quick

QUEUE_DEPTH = 6
BURST = 100


def _canon(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def test_overload_partition_deterministic_and_replayable(
    tmp_path, save_result
):
    partitions = []
    for attempt in range(2):
        core = ServerCore(ServeConfig(queue_depth=QUEUE_DEPTH, workers=2))
        client = InProcessClient(core)
        accepted = [
            request.id
            for request in seeded_burst(2023, BURST, num_ops=200)
            if client.send(request) is None
        ]
        partitions.append(tuple(accepted))
        if attempt:
            continue
        # First pass only: drain the admitted queue into a journal and
        # replay it — the replay must be byte-identical to a direct run.
        journal = tmp_path / "drain.jsonl"
        assert core.drain(journal) == QUEUE_DEPTH
        replayed = execute_drained(journal, workers=2)
        requests = {
            r.id: r for r in seeded_burst(2023, BURST, num_ops=200)
        }
        for request_id, results in replayed.items():
            jobs = build_jobs(requests[request_id])
            reference = results_payload(
                jobs,
                run_jobs(
                    jobs,
                    workers=2 if len(jobs) > 1 else 1,
                    on_error="raise",
                    retries=0,
                ),
            )
            assert _canon(results) == _canon(reference), request_id
    assert partitions[0] == partitions[1]
    assert len(partitions[0]) == QUEUE_DEPTH
    save_result(
        "serve_smoke",
        "\n".join(
            [
                f"burst={BURST} queue_depth={QUEUE_DEPTH}",
                f"accepted={','.join(partitions[0])}",
                f"shed={BURST - QUEUE_DEPTH}",
                "replay=byte-identical",
            ]
        ),
    )
