"""Benchmark: Fig. 9 — BMT height study (DBMF / SBMF with SecPB and SP).

Paper values: sp_dbmf 88.9%, sp_sbmf 243% (3.43x), cm_dbmf 33.3%,
cm_sbmf 56.6%; the highlight is cm_sbmf outperforming sp_dbmf.
"""

from repro.analysis.experiments import run_fig9

from conftest import BENCH_JOBS, SWEEP_NUM_OPS


def test_fig9_bmf_height_study(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig9, kwargs=dict(num_ops=SWEEP_NUM_OPS, jobs=BENCH_JOBS),
        rounds=1,
        iterations=1,
    )
    save_result("fig9", result.render())
    print("\n" + result.render())

    mean = result.mean_overhead_pct
    # Height reduction helps CM monotonically: dbmf (h=2) < sbmf (h=5) < full.
    assert mean["cm_dbmf"] < mean["cm_sbmf"] < mean["cm"]
    # SP orders the same way across forest variants.
    assert mean["sp_dbmf"] < mean["sp_sbmf"]
    # The paper's highlight: SecPB+SBMF beats even SP+DBMF.
    assert mean["cm_sbmf"] < mean["sp_dbmf"]
    assert mean["cm_dbmf"] < mean["sp_dbmf"]
