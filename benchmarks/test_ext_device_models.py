"""Extension: device-level checks — banked PCM bandwidth and wear leveling.

Two abstraction audits for the headline simulator:

* the drain path assumes the PCM absorbs SecPB drains without becoming
  the bottleneck; replaying measured drain streams through the banked
  device model (Table I queues, 16 banks) verifies the assumption;
* SecPB drains concentrate writes on hot blocks; the Start-Gap model
  shows the wear-leveling substrate flattens that skew with ~1% write
  overhead.
"""

from repro.analysis.report import format_table
from repro.core.schemes import get_scheme
from repro.core.simulator import SecurePersistencySimulator
from repro.sim.nvm_banked import BankedNVM, BankedNVMParams
from repro.sim.wear import simulate_wear
from repro.workloads.spec import build_trace

from conftest import SWEEP_NUM_OPS


def run_bandwidth_audit():
    """Measure drain demand per benchmark vs banked-device supply.

    Reports the number of PCM banks each stream needs; the audit's finding
    is itself interesting: the two most write-intense profiles (gamess,
    povray) need more than a 16-bank device — the paper's gem5 PCM
    configuration must provide rank/bank parallelism beyond that (a 64-bank
    8 GB module covers everything).
    """
    sim = SecurePersistencySimulator(scheme=get_scheme("cobcm"))
    rows = []
    worst_utilization_64 = 0.0
    for bench in ("gamess", "povray", "gobmk", "hmmer"):
        trace = build_trace(bench, SWEEP_NUM_OPS)
        result = sim.run(trace, 0.3)
        drains = result.stats.get("drain.services", 0.0)
        demand = drains / result.cycles  # blocks per cycle
        supply_16 = BankedNVM(
            params=BankedNVMParams(banks=16)
        ).sustained_write_bandwidth()
        supply_64 = BankedNVM(
            params=BankedNVMParams(banks=64)
        ).sustained_write_bandwidth()
        banks_needed = demand * 600  # write_cycles
        worst_utilization_64 = max(worst_utilization_64, demand / supply_64)
        rows.append(
            [
                bench,
                f"{demand:.5f}",
                f"{100 * demand / supply_16:.0f}%",
                f"{100 * demand / supply_64:.0f}%",
                f"{banks_needed:.0f}",
            ]
        )
    return rows, worst_utilization_64


def run_wear_audit():
    """Wear metrics of the drain stream with and without Start-Gap.

    The wear case that matters for SecPB systems is a metadata/header
    block written on *every* operation — exactly what
    :class:`repro.apps.log.PersistentLog` does with its committed-tail
    header.  The stream below replays that pattern: one header write per
    record plus sequential record-block writes.  Start-Gap levels wear
    over full gap rotations (N*(N+1)*psi writes for an N-line region) —
    regions are sized so the stream spans ~10 rotations, the same
    rotations-per-lifetime ratio a deployment-scale region sees.
    """
    appends = SWEEP_NUM_OPS // 3
    stream = []
    for i in range(appends):
        stream.append(0)  # the log header block
        stream.append(1 + (i % 63))  # the record block
    return simulate_wear(stream, lines=64, psi=8)


def test_banked_pcm_absorbs_drain_traffic(benchmark, save_result):
    (rows, worst), wear = benchmark.pedantic(
        lambda: (run_bandwidth_audit(), run_wear_audit()), rounds=1, iterations=1
    )
    rendered = format_table(
        [
            "benchmark",
            "drain demand (blk/cyc)",
            "util @16 banks",
            "util @64 banks",
            "banks needed",
        ],
        rows,
        title="extension: banked-PCM bandwidth audit (COBCM drains)",
    )
    rendered += "\n\n" + format_table(
        ["metric", "value"],
        [
            ["raw wear ratio (max/mean)", f"{wear['raw_wear_ratio']:.1f}"],
            ["Start-Gap wear ratio", f"{wear['leveled_wear_ratio']:.1f}"],
            ["raw max line writes", int(wear["raw_max_writes"])],
            ["Start-Gap max line writes", int(wear["leveled_max_writes"])],
            ["write overhead", f"{100 * wear['write_overhead']:.2f}%"],
        ],
        title="extension: Start-Gap wear leveling on a log-header write stream",
    )
    save_result("ext_device_models", rendered)
    print("\n" + rendered)

    # The abstraction holds with a realistically parallel device: at 64
    # banks even the heaviest drain stream fits within write bandwidth.
    assert worst < 1.0
    # Start-Gap flattens the header hot line at ~1/psi write overhead.
    assert wear["leveled_wear_ratio"] < 0.5 * wear["raw_wear_ratio"]
    assert wear["leveled_max_writes"] < 0.5 * wear["raw_max_writes"]
    assert wear["write_overhead"] < 0.15
