"""Lint-performance budget: the semantic pass must stay fast enough
to run on every commit.

The whole-program analysis (project model -> call graph -> dataflow
fixed point -> SPB7xx/8xx/9xx rules) re-parses the entire ``src`` tree
with no cache.  If it cannot finish well inside the budget, the
pre-commit hook and the ``make lint`` gate stop being something people
run reflexively — which is how static analysis dies in practice.

The budget is deliberately generous (an order of magnitude above the
typical cold run) and overridable via ``SECPB_LINT_PERF_BUDGET``
seconds, so slow shared CI runners cannot flake the gate; it exists to
catch *pathological* regressions (an accidental quadratic fixed point,
a rule re-running the dataflow per finding), not to bench the runner.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.lint.cli import main as lint_main

pytestmark = pytest.mark.quick

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

BUDGET_SECONDS = float(os.environ.get("SECPB_LINT_PERF_BUDGET", "30"))


def test_full_semantic_lint_within_budget(tmp_path):
    # A throwaway cache file keeps the run cold and leaves the
    # developer's real cache untouched.
    start = time.monotonic()
    exit_code = lint_main(
        [str(SRC), "--cache-file", str(tmp_path / "cache.json")]
    )
    elapsed = time.monotonic() - start
    assert exit_code == 0, "src tree must lint clean (see make lint)"
    assert elapsed < BUDGET_SECONDS, (
        f"cold full-tree lint took {elapsed:.1f}s, budget is "
        f"{BUDGET_SECONDS:.0f}s (override: SECPB_LINT_PERF_BUDGET)"
    )


def test_cached_semantic_lint_is_faster_than_budget(tmp_path):
    # Second run over an unchanged tree must be served from the cache;
    # we assert it beats a much tighter bound than the cold budget.
    cache_file = str(tmp_path / "cache.json")
    assert lint_main([str(SRC), "--cache-file", cache_file]) == 0
    start = time.monotonic()
    assert lint_main([str(SRC), "--cache-file", cache_file]) == 0
    elapsed = time.monotonic() - start
    assert elapsed < BUDGET_SECONDS / 2, (
        f"cached lint took {elapsed:.1f}s — the incremental cache is "
        "not being hit"
    )
