"""Extension: counter-overflow / page-re-encryption rate (Sec. IV-A claim).

The paper notes the coalescing optimization "avoids incrementing the
counter frequently for a single dirty block, delaying counter overflow
which requires page re-encryption [46]".  This experiment quantifies it:
7-bit minor counters overflow after 127 increments, and every overflow
re-encrypts the whole 4 KB page.  We replay a hot-block store stream into
the functional secure memory under two counter disciplines:

* per-store increments (a write-through secure memory, or SecPB without
  the Sec. IV-A optimization), and
* per-residency increments (the SecPB's coalesced counter updates),

and count real page re-encryptions.
"""

from repro.analysis.report import format_table
from repro.core.schemes import get_scheme
from repro.core.simulator import SecurePersistencySimulator
from repro.security.engine import SecureMemory
from repro.workloads.synthetic import hotspot_trace

NUM_OPS = 30_000


def run_overflow_study():
    trace = hotspot_trace(
        NUM_OPS,
        hot_blocks=12,
        cold_blocks=4000,
        hot_fraction=0.9,
        store_fraction=1.0,
        burst_length=4,
        mean_gap=1.0,
        seed=23,
    )

    # Discipline 1: counter bumped on every store (sec_wt-style).
    per_store = SecureMemory(atomic=True)
    payload = bytes(64)
    for _, block, _ in trace.iter_ops():
        per_store.persist_block(int(block), payload)

    # Discipline 2: counter bumped once per SecPB residency — drive the
    # timing simulator to get the residency (allocation) stream, then
    # replay only the drains into the functional memory.
    sim = SecurePersistencySimulator(scheme=get_scheme("cobcm"))
    result = sim.run(trace)
    allocations = result.stats["secpb.allocations"]
    writes = result.stats["secpb.writes"]

    coalesced = SecureMemory(atomic=True)
    # Per-block drain counts scale down by the measured NWPE; replay the
    # same blocks once per residency using the simulator's allocation rate.
    residency_stride = max(1, round(writes / allocations))
    store_index = 0
    for _, block, _ in trace.iter_ops():
        if store_index % residency_stride == 0:
            coalesced.persist_block(int(block), payload)
        store_index += 1

    return {
        "stores": int(writes),
        "residencies": int(allocations),
        "nwpe": writes / allocations,
        "per_store_overflows": per_store.counters.overflows,
        "coalesced_overflows": coalesced.counters.overflows,
    }


def test_counter_overflow_rate(benchmark, save_result):
    data = benchmark.pedantic(run_overflow_study, rounds=1, iterations=1)

    rows = [
        ["stores replayed", data["stores"]],
        ["SecPB residencies", data["residencies"]],
        ["NWPE", f"{data['nwpe']:.1f}"],
        ["page re-encryptions (per-store counters)", data["per_store_overflows"]],
        ["page re-encryptions (coalesced counters)", data["coalesced_overflows"]],
    ]
    rendered = format_table(
        ["metric", "value"],
        rows,
        title="extension: split-counter overflow rate vs coalescing (Sec. IV-A)",
    )
    save_result("ext_counter_overflow", rendered)
    print("\n" + rendered)

    # The paper's claim: coalescing delays overflow materially.
    assert data["per_store_overflows"] > 0
    assert data["coalesced_overflows"] < data["per_store_overflows"] / 2
