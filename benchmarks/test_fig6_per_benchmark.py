"""Benchmark: Fig. 6 — per-benchmark execution time normalized to BBB.

The paper's per-benchmark anchors: gamess is the eager schemes' worst case
(CM ~18.2x), povray is heavily MAC-bound under NoGap (M recovers 51.6%),
and load-dominated benchmarks (mcf, omnetpp) sit near the baseline.
"""

from repro.analysis.experiments import run_fig6

from conftest import BENCH_JOBS, BENCH_NUM_OPS


def test_fig6_per_benchmark_series(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig6, kwargs=dict(num_ops=BENCH_NUM_OPS, jobs=BENCH_JOBS),
        rounds=1,
        iterations=1,
    )
    save_result("fig6", result.render())
    print("\n" + result.render())

    per = result.per_benchmark_pct
    # gamess: the eager worst case (paper: 18.2x under CM).
    assert per["gamess"]["cm"] > 600.0
    # povray: delaying the MAC (NoGap -> M) recovers a large fraction
    # (paper: 51.6% execution-time reduction).
    povray_ratio = (100 + per["povray"]["nogap"]) / (100 + per["povray"]["m"])
    assert povray_ratio > 1.5
    # Load-dominated benchmarks barely notice security.
    assert per["mcf"]["cm"] < 80.0
    assert per["omnetpp"]["cm"] < 80.0
    # COBCM is near-baseline everywhere.
    assert all(v < 30.0 for v in (row["cobcm"] for row in per.values()))
