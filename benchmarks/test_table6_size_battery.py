"""Benchmark: Table VI — battery capacity vs SecPB size (COBCM, NoGap).

Paper values (SuperCap mm^3), COBCM: 1.33 / 2.52 / 4.89 / 9.63 / 19.12 /
38.11 / 76.10 for 8..512 entries; NoGap: 0.08 .. 4.35.
"""

import pytest

from repro.analysis.experiments import run_table6
from repro.analysis.paper_values import TABLE6_COBCM_SUPERCAP_MM3


def test_table6_size_sweep(benchmark, save_result):
    table = benchmark.pedantic(run_table6, rounds=3, iterations=1)
    save_result("table6", table.render())
    print("\n" + table.render())

    sizes = sorted(table.cobcm)
    # Monotone growth for both schemes.
    for series in (table.cobcm, table.nogap):
        volumes = [series[s].supercap_mm3 for s in sizes]
        assert volumes == sorted(volumes)
    # COBCM needs far more than NoGap at every size (late BMT work).
    for size in sizes:
        assert table.cobcm[size].supercap_mm3 > 5 * table.nogap[size].supercap_mm3
    # COBCM column matches the paper row by row.
    for size, paper in TABLE6_COBCM_SUPERCAP_MM3.items():
        assert table.cobcm[size].supercap_mm3 == pytest.approx(paper, rel=0.06)
