"""Quick smoke suite: the parallel experiment path on every PR.

Marked ``quick`` so CI (and `make smoke`) can exercise the runner
end-to-end in seconds: one small Table IV sweep through a process pool,
checked bit-identical against the serial reference, plus the CLI path
with ``--jobs 2``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import run_table4
from repro.cli import main

pytestmark = pytest.mark.quick

SMOKE = dict(num_ops=2500, benchmarks=["gamess", "povray", "hmmer"])


def test_parallel_sweep_matches_serial(save_result):
    serial = run_table4(jobs=1, **SMOKE)
    parallel = run_table4(jobs=2, **SMOKE)
    assert parallel.mean_overhead_pct == serial.mean_overhead_pct
    assert parallel.per_benchmark_pct == serial.per_benchmark_pct
    assert parallel.render() == serial.render()
    save_result("quick_smoke", parallel.render())


def test_cli_parallel_experiment_with_json_save(capsys, tmp_path):
    out_path = tmp_path / "table4.json"
    assert (
        main(
            [
                "experiment",
                "table4",
                "--num-ops",
                "1500",
                "--jobs",
                "2",
                "--save",
                str(out_path),
            ]
        )
        == 0
    )
    assert "cobcm" in capsys.readouterr().out
    saved = json.loads(out_path.read_text())
    assert saved["experiment"] == "table4"
    assert set(saved["mean_overhead_pct"]) >= {"cobcm", "nogap"}
