"""Microbenchmark of the simulator inner loop (perf-regression gate).

Times one full trace-driven simulation per scheme with pytest-benchmark,
the same measurement ``tools/bench_baseline`` records in
``BENCH_simloop.json``.  The hot-path optimization work (ISSUE 3) holds
two properties simultaneously:

* artifacts stay byte-identical (tests/test_golden_output.py), and
* single-simulation throughput stays at >= 2x the pre-optimization
  seed on NoGap and COBCM (BENCH_simloop.json "before" vs "after").

pytest-benchmark tracks the wall-clock side across runs; the assertions
here are *correctness* ones (each timed run must produce the same cycle
count every iteration), so the suite never flakes on machine speed.

Marked ``quick``: CI runs this with ``SECPB_HOTLOOP_OPS`` reduced — the
point of the CI job is catching accidental O(n^2) or per-op allocation
regressions, not absolute timing.
"""

from __future__ import annotations

import os

import pytest

from repro.core.schemes import SPECTRUM_ORDER, get_scheme
from repro.core.simulator import run_scheme
from repro.workloads.spec import build_trace

pytestmark = pytest.mark.quick

HOTLOOP_OPS = int(os.environ.get("SECPB_HOTLOOP_OPS", "40000"))
SEED = 1
BENCHMARK = "gamess"


@pytest.fixture(scope="module")
def trace():
    built = build_trace(BENCHMARK, HOTLOOP_OPS, SEED)
    # Materialize the iteration columns once so the first timed round
    # is not charged the one-off tolist() conversion.
    next(iter(built.iter_ops()))
    return built


def _run(trace, scheme):
    return run_scheme(trace, scheme).cycles


@pytest.mark.parametrize("name", ["bbb"] + SPECTRUM_ORDER)
def test_single_simulation_throughput(benchmark, trace, name):
    scheme = None if name == "bbb" else get_scheme(name)
    reference = _run(trace, scheme)
    cycles = benchmark(_run, trace, scheme)
    # Determinism inside the timing loop: every iteration simulated the
    # exact same execution.
    assert cycles == reference
    assert cycles > 0
