# Developer entry points.  `make smoke` is the per-PR gate: the tier-1
# suite plus a small parallel-runner experiment, so the --jobs path is
# exercised on every change.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke bench artifacts

test:
	$(PYTHON) -m pytest tests -x -q

smoke: test
	$(PYTHON) -m pytest benchmarks -m quick -q -p no:cacheprovider
	$(PYTHON) -m repro experiment table4 --num-ops 2000 --jobs 2

# Full paper-artifact harness (writes benchmarks/results/*.txt).
# SECPB_BENCH_JOBS controls sweep parallelism, e.g. `make bench JOBS=8`.
JOBS ?= 1
bench:
	SECPB_BENCH_JOBS=$(JOBS) $(PYTHON) -m pytest benchmarks --benchmark-only

artifacts: bench
