# Developer entry points.  `make smoke` is the per-PR gate: the tier-1
# suite plus a small parallel-runner experiment, so the --jobs path is
# exercised on every change.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke bench artifacts lint ci

test:
	$(PYTHON) -m pytest tests -x -q

# Static analysis gate: secpb-lint always runs (stdlib-only), including
# the whole-program semantic pass (SPB7xx-9xx: call-graph taint,
# artifact-IO reachability, exception flow); ruff and mypy run when
# installed and are skipped gracefully when not, so the target works in
# the hermetic container and in a dev venv alike.
lint:
	$(PYTHON) -m repro.lint src
	@if $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "ruff not installed; skipping"; \
	fi
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy src/repro/core/schemes.py src/repro/analysis/runner.py src/repro/lint; \
	else \
		echo "mypy not installed; skipping"; \
	fi

# The CI entry point: static analysis, the tier-1 suite, the quick
# parallel-runner smoke (which includes the observability smoke in
# benchmarks/test_obs_smoke.py), the fault-campaign smoke, the
# instrumented-run smoke, the resume smoke (deadline checkpoint ->
# resume -> byte-identical report), the chaos smoke (systematic
# crash-consistency sweep + seeded envfault soak), and the serve smoke
# (socket burst byte-identity, SIGTERM drain -> exit 75 -> resume,
# breaker cycle; mirrors .github/workflows/ci.yml).
ci: lint test
	$(PYTHON) -m pytest benchmarks -m quick -q -p no:cacheprovider
	$(PYTHON) -m repro faultcampaign --crash-points 2 --num-stores 40 --jobs 2
	PYTHON="$(PYTHON)" sh tools/obs_smoke.sh
	PYTHON="$(PYTHON)" sh tools/resume_smoke.sh
	PYTHON="$(PYTHON)" sh tools/chaos_smoke.sh
	PYTHON="$(PYTHON)" sh tools/serve_smoke.sh

smoke: test
	$(PYTHON) -m pytest benchmarks -m quick -q -p no:cacheprovider
	$(PYTHON) -m repro experiment table4 --num-ops 2000 --jobs 2

# Full paper-artifact harness (writes benchmarks/results/*.txt).
# SECPB_BENCH_JOBS controls sweep parallelism, e.g. `make bench JOBS=8`.
JOBS ?= 1
bench:
	SECPB_BENCH_JOBS=$(JOBS) $(PYTHON) -m pytest benchmarks --benchmark-only

artifacts: bench
