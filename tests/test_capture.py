"""Tests for repro.workloads.capture — application trace capture."""

import pytest

from repro.core.crash import SecurePersistentSystem
from repro.core.schemes import get_scheme
from repro.core.simulator import run_scheme
from repro.workloads.capture import TracedPersistentHeap


class TestAllocation:
    def test_allocations_are_block_aligned_and_disjoint(self):
        heap = TracedPersistentHeap()
        a = heap.allocate("a", 100)  # 2 blocks
        b = heap.allocate("b", 64)  # 1 block
        assert a.base_block == 0
        assert a.num_blocks == 2
        assert b.base_block == 2

    def test_duplicate_name_rejected(self):
        heap = TracedPersistentHeap()
        heap.allocate("a", 64)
        with pytest.raises(ValueError, match="already allocated"):
            heap.allocate("a", 64)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            TracedPersistentHeap().allocate("a", 0)

    def test_lookup_by_name(self):
        heap = TracedPersistentHeap()
        obj = heap.allocate("x", 64)
        assert heap.object("x") is obj


class TestReadWrite:
    def test_write_then_read_roundtrip(self):
        heap = TracedPersistentHeap()
        obj = heap.allocate("a", 256)
        heap.write(obj, 10, b"hello")
        assert heap.read(obj, 10, 5) == b"hello"

    def test_cross_block_write(self):
        heap = TracedPersistentHeap()
        obj = heap.allocate("a", 256)
        payload = bytes(range(100))
        heap.write(obj, 30, payload)  # spans blocks 0 and 1 and 2
        assert heap.read(obj, 30, 100) == payload

    def test_out_of_bounds_rejected(self):
        heap = TracedPersistentHeap()
        obj = heap.allocate("a", 64)
        with pytest.raises(ValueError, match="outside"):
            heap.write(obj, 60, b"too-long")
        with pytest.raises(ValueError):
            heap.read(obj, -1, 4)

    def test_unwritten_bytes_read_zero(self):
        heap = TracedPersistentHeap()
        obj = heap.allocate("a", 64)
        assert heap.read(obj, 0, 4) == b"\x00" * 4


class TestTraceProduction:
    def test_ops_recorded_per_block(self):
        heap = TracedPersistentHeap()
        obj = heap.allocate("a", 256)
        heap.write(obj, 0, b"x" * 64)  # 1 block
        heap.write(obj, 60, b"y" * 10)  # spans 2 blocks
        heap.read(obj, 0, 4)  # 1 block
        assert heap.ops_recorded == 4

    def test_finish_produces_replayable_trace(self):
        heap = TracedPersistentHeap(compute_gap=3)
        obj = heap.allocate("a", 1024)
        for i in range(50):
            heap.write(obj, (i * 8) % 1024, b"12345678")
        trace = heap.finish("app")
        assert trace.name == "app"
        assert trace.num_stores == 50 + sum(
            1 for i in range(50) if (i * 8) % 1024 + 8 > 1024
        )
        result = run_scheme(trace, get_scheme("cobcm"))
        assert result.cycles > 0

    def test_finish_freezes_heap(self):
        heap = TracedPersistentHeap()
        obj = heap.allocate("a", 64)
        heap.finish()
        with pytest.raises(RuntimeError, match="finished"):
            heap.write(obj, 0, b"x")

    def test_empty_trace(self):
        trace = TracedPersistentHeap().finish("empty")
        assert len(trace) == 0

    def test_gap_parameter_validated(self):
        with pytest.raises(ValueError):
            TracedPersistentHeap(compute_gap=-1)


class TestMirroring:
    def test_mirrored_writes_are_crash_recoverable(self):
        """The same captured run exercises crash recovery end to end."""
        system = SecurePersistentSystem(get_scheme("cobcm"))
        heap = TracedPersistentHeap(mirror_system=system)
        obj = heap.allocate("records", 4096)
        for i in range(40):
            heap.write(obj, i * 64, bytes([i]) * 64)
        system.crash()
        recovery = system.recover()
        assert recovery.ok, recovery.failure_summary()
        recovered = system.memory.recover_block(obj.base_block + 7)
        assert recovered.plaintext == bytes([7]) * 64
