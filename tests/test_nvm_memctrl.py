"""Tests for repro.sim.nvm and repro.sim.memctrl."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.memctrl import MemoryController
from repro.sim.nvm import ZERO_BLOCK, NonVolatileMemory


def blk(byte):
    return bytes([byte]) * 64


class TestNVM:
    def test_unwritten_block_reads_zero(self):
        assert NonVolatileMemory().read_block(123) == ZERO_BLOCK

    def test_write_then_read(self):
        nvm = NonVolatileMemory()
        nvm.write_block(5, blk(0xAB))
        assert nvm.read_block(5) == blk(0xAB)

    def test_write_rejects_wrong_size(self):
        with pytest.raises(ValueError, match="block-granular"):
            NonVolatileMemory().write_block(0, b"short")

    def test_corrupt_block_changes_content_silently(self):
        nvm = NonVolatileMemory()
        nvm.write_block(1, blk(1))
        reads_before = nvm.stats.get("nvm.reads")
        nvm.corrupt_block(1, blk(2))
        assert nvm.read_block(1) == blk(2)
        # corruption is the attacker's doing: no write accounting
        assert nvm.stats.get("nvm.writes") == 1
        assert nvm.stats.get("nvm.reads") == reads_before + 1

    def test_corrupt_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            NonVolatileMemory().corrupt_block(0, b"x")

    def test_timing_from_table1(self):
        nvm = NonVolatileMemory(clock_ghz=4.0)
        assert nvm.timing.read_cycles == 220
        assert nvm.timing.write_cycles == 600

    def test_len_counts_written_blocks(self):
        nvm = NonVolatileMemory()
        nvm.write_block(1, blk(1))
        nvm.write_block(2, blk(2))
        nvm.write_block(1, blk(3))
        assert len(nvm) == 2

    def test_written_blocks_snapshot_is_copy(self):
        nvm = NonVolatileMemory()
        nvm.write_block(1, blk(1))
        snap = nvm.written_blocks()
        snap[2] = blk(2)
        assert len(nvm) == 1


class TestMemoryController:
    def _mc(self):
        config = SystemConfig()
        nvm = NonVolatileMemory(config.nvm, config.clock_ghz)
        return MemoryController(config, nvm), nvm

    def test_enqueue_and_flush(self):
        mc, nvm = self._mc()
        mc.enqueue(1, blk(1))
        mc.enqueue(2, blk(2))
        assert mc.wpq_occupancy == 2
        flushed = mc.flush_wpq()
        assert flushed == 2
        assert nvm.read_block(1) == blk(1)
        assert mc.wpq_occupancy == 0

    def test_pending_writes_latest_wins(self):
        mc, _ = self._mc()
        mc.enqueue(1, blk(1))
        mc.enqueue(1, blk(2))
        assert mc.pending_writes()[1] == blk(2)

    def test_overflow_drains_oldest_to_nvm(self):
        mc, nvm = self._mc()
        for i in range(40):  # wpq_entries = 32
            mc.enqueue(i, blk(i))
        assert mc.wpq_occupancy == 32
        assert nvm.read_block(0) == blk(0)  # oldest already durable

    def test_accept_cycles_fast_when_empty(self):
        mc, _ = self._mc()
        acceptance, completion = mc.accept_cycles(now=0.0)
        assert acceptance == 0.0
        assert completion == 600

    def test_accept_cycles_backpressure_when_saturated(self):
        mc, _ = self._mc()
        acceptance = 0.0
        for _ in range(64):
            acceptance, _ = mc.accept_cycles(now=0.0)
        # 64 outstanding writes > 32-entry WPQ: acceptance must stall.
        assert acceptance > 0.0
        assert mc.stats.get("mc.wpq_stalls") > 0

    def test_writes_survive_as_durable_after_flush(self):
        """ADR guarantee: everything accepted into the WPQ reaches PM."""
        mc, nvm = self._mc()
        for i in range(10):
            mc.enqueue(i, blk(i))
        mc.flush_wpq()
        for i in range(10):
            assert nvm.read_block(i) == blk(i)
