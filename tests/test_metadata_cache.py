"""Tests for repro.security.metadata_cache — CTR$/MAC$/BMT$."""

from repro.security.metadata_cache import MetadataCaches
from repro.sim.config import SystemConfig


def mdc():
    return MetadataCaches(SystemConfig())


class TestLatencies:
    def test_counter_miss_then_hit(self):
        caches = mdc()
        miss = caches.access_counter(3)
        hit = caches.access_counter(3)
        assert miss == 2 + 220
        assert hit == 2

    def test_mac_miss_then_hit(self):
        caches = mdc()
        assert caches.access_mac(7) == 2 + 220
        assert caches.access_mac(7) == 2

    def test_bmt_node_miss_then_hit(self):
        caches = mdc()
        assert caches.access_bmt_node(1, 5) == 2 + 220
        assert caches.access_bmt_node(1, 5) == 2

    def test_bmt_nodes_keyed_by_level_and_index(self):
        caches = mdc()
        caches.access_bmt_node(1, 5)
        assert caches.access_bmt_node(2, 5) == 2 + 220  # different level
        assert caches.access_bmt_node(1, 5) == 2

    def test_caches_are_disjoint(self):
        caches = mdc()
        caches.access_counter(0)
        assert caches.access_mac(0) == 2 + 220  # MAC$ not warmed by CTR$


class TestStats:
    def test_hit_miss_counters(self):
        caches = mdc()
        caches.access_counter(0)
        caches.access_counter(0)
        assert caches.stats.get("mdc.counter.misses") == 1
        assert caches.stats.get("mdc.counter.hits") == 1


class TestCrash:
    def test_discard_volatile_empties_all(self):
        caches = mdc()
        caches.access_counter(0)
        caches.access_mac(0)
        caches.access_bmt_node(0, 0)
        caches.discard_volatile()
        # Everything misses again.
        assert caches.access_counter(0) == 2 + 220
        assert caches.access_mac(0) == 2 + 220
        assert caches.access_bmt_node(0, 0) == 2 + 220
