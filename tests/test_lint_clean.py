"""Tier-1 gate: the shipped source tree is secpb-lint clean.

This is the CI contract from the linting PR: `repro lint src/` exits 0,
so every invariant family (determinism, scheme table, stats hygiene,
pool safety) is machine-checked on every change — including the
whole-program semantic pass (SPB7xx taint, SPB8xx IO reachability,
SPB9xx exception flow) added with the semantic-analysis PR.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import analyze_paths, lint_paths, run_project_rules
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def test_source_tree_is_lint_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_source_tree_is_semantically_clean():
    """Zero SPB7xx/8xx/9xx findings on the shipped tree — the gate the
    interprocedural rules are held to, exactly like the per-file ones."""
    analysis = analyze_paths([SRC])
    findings = run_project_rules(analysis)
    assert findings == [], "\n".join(f.render() for f in findings)
    assert not analysis.project.parse_errors


def test_semantic_analysis_covers_the_whole_tree():
    """The project model really is whole-program: every core package is
    in the module map and the call graph is non-trivial."""
    analysis = analyze_paths([SRC])
    modules = analysis.project.modules
    for package in (
        "repro.sim",
        "repro.core.simulator",
        "repro.security.engine",
        "repro.durability.artifacts",
        "repro.analysis.runner",
        "repro.fault.campaign",
    ):
        assert package in modules, f"{package} missing from project model"
    assert len(analysis.graph.edges) > 100


def test_cli_exits_zero_on_clean_tree(capsys):
    assert lint_main([str(SRC)]) == 0
    assert "secpb-lint: clean" in capsys.readouterr().out


def test_cli_json_on_clean_tree(capsys):
    assert lint_main([str(SRC), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 0 and payload["findings"] == []


def test_cli_exits_nonzero_on_violation(tmp_path, capsys):
    bad = tmp_path / "repro_fixture.py"
    bad.write_text(
        "def fixup(result):\n    result.stats['ppti'] = 0.0\n"
    )
    assert lint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "SPB302" in out


def test_cli_rejects_missing_path(capsys):
    assert lint_main([str(REPO_ROOT / "no_such_dir_xyz")]) == 2


def test_cli_rejects_unknown_code(capsys):
    assert lint_main([str(SRC), "--select", "SPB999"]) == 2


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in (
        "SPB101",
        "SPB102",
        "SPB103",
        "SPB104",
        "SPB201",
        "SPB202",
        "SPB203",
        "SPB204",
        "SPB301",
        "SPB302",
        "SPB303",
        "SPB401",
        "SPB402",
        "SPB403",
    ):
        assert code in out
