"""Tests for repro.persistency — flush-based strict/epoch persistency."""

import pytest

from repro.baselines.bbb import run_bbb
from repro.core.schemes import get_scheme
from repro.core.simulator import run_scheme
from repro.persistency.flush import FlushBasedSimulator, PersistencyModel
from repro.workloads.synthetic import zipf_trace


@pytest.fixture(scope="module")
def trace():
    return zipf_trace(
        num_ops=2500,
        working_set_blocks=600,
        zipf_alpha=0.7,
        store_fraction=0.5,
        burst_length=2,
        mean_gap=3.0,
        seed=21,
        name="persistency-unit",
    )


class TestConstruction:
    def test_invalid_epoch_size(self):
        with pytest.raises(ValueError):
            FlushBasedSimulator(PersistencyModel.EPOCH, epoch_stores=0)

    def test_scheme_names(self):
        assert FlushBasedSimulator(PersistencyModel.STRICT).scheme_name == "flush_strict"
        assert (
            FlushBasedSimulator(PersistencyModel.STRICT, secure=True).scheme_name
            == "flush_strict_secure"
        )
        assert (
            FlushBasedSimulator(PersistencyModel.EPOCH, epoch_stores=64).scheme_name
            == "flush_epoch64"
        )

    def test_invalid_warmup(self, trace):
        with pytest.raises(ValueError):
            FlushBasedSimulator().run(trace, warmup_frac=2.0)


class TestModelOrdering:
    def test_strict_flushes_every_store(self, trace):
        result = FlushBasedSimulator(PersistencyModel.STRICT).run(trace)
        assert result.stats["flush.lines"] == trace.num_stores
        assert result.stats["flush.fences"] == trace.num_stores

    def test_epoch_fences_once_per_epoch(self, trace):
        result = FlushBasedSimulator(
            PersistencyModel.EPOCH, epoch_stores=32
        ).run(trace)
        expected_fences = -(-trace.num_stores // 32)
        assert result.stats["flush.fences"] == expected_fences
        # Coalescing within epochs: fewer lines than stores.
        assert result.stats["flush.lines"] <= trace.num_stores

    def test_epoch_is_faster_than_strict(self, trace):
        """The classic result: relaxing persist order pays."""
        strict = FlushBasedSimulator(PersistencyModel.STRICT).run(trace)
        epoch = FlushBasedSimulator(PersistencyModel.EPOCH, epoch_stores=32).run(trace)
        assert epoch.cycles < strict.cycles

    def test_larger_epochs_are_not_slower(self, trace):
        small = FlushBasedSimulator(PersistencyModel.EPOCH, epoch_stores=8).run(trace)
        large = FlushBasedSimulator(PersistencyModel.EPOCH, epoch_stores=128).run(trace)
        assert large.cycles <= small.cycles * 1.01

    def test_security_makes_flushing_slower(self, trace):
        plain = FlushBasedSimulator(PersistencyModel.STRICT).run(trace)
        secure = FlushBasedSimulator(PersistencyModel.STRICT, secure=True).run(trace)
        assert secure.cycles > plain.cycles


class TestPersistentHierarchyMotivation:
    """The intro's argument, quantified end to end."""

    def test_bbb_beats_flush_based_strict(self, trace):
        """Persistent hierarchy eliminates flushes and fences."""
        bbb = run_bbb(trace)
        strict = FlushBasedSimulator(PersistencyModel.STRICT).run(trace)
        assert bbb.cycles < strict.cycles

    def test_secpb_cobcm_beats_secure_flush_strict(self, trace):
        """...and SecPB keeps the benefit under full security."""
        cobcm = run_scheme(trace, get_scheme("cobcm"))
        secure_strict = FlushBasedSimulator(
            PersistencyModel.STRICT, secure=True
        ).run(trace)
        assert cobcm.cycles < secure_strict.cycles

    def test_secpb_cobcm_beats_secure_epoch(self, trace):
        """SecPB's strict persistency even beats *epoch* persistency with
        flush-based security — SP stops being the slow option."""
        cobcm = run_scheme(trace, get_scheme("cobcm"))
        secure_epoch = FlushBasedSimulator(
            PersistencyModel.EPOCH, epoch_stores=32, secure=True
        ).run(trace)
        assert cobcm.cycles < secure_epoch.cycles

    def test_deterministic(self, trace):
        a = FlushBasedSimulator(PersistencyModel.EPOCH, epoch_stores=16).run(trace)
        b = FlushBasedSimulator(PersistencyModel.EPOCH, epoch_stores=16).run(trace)
        assert a.cycles == b.cycles
