"""Hypothesis stateful (model-based) tests for core structures.

These drive long random operation sequences against a simple reference
model, letting hypothesis shrink any divergence to a minimal
counterexample — the strongest correctness evidence short of proof for
the SecPB structure, the persistent hash map, and the Start-Gap mapping.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.schemes import COBCM
from repro.core.secpb import SecPB
from repro.sim.config import SecPBConfig
from repro.sim.wear import StartGapWearLeveler


class SecPBModel(RuleBasedStateMachine):
    """SecPB vs an ordered-dict reference under write/drain sequences."""

    def __init__(self):
        super().__init__()
        self.secpb = SecPB(SecPBConfig(entries=6), COBCM)
        self.model = {}  # block -> write count, insertion-ordered
        self.total_writes = 0
        self.total_allocations = 0

    @rule(block=st.integers(0, 15))
    def write(self, block):
        if self.secpb.full and block not in self.model:
            return  # the controller would drain first; modelled via drain rule
        entry, allocated = self.secpb.write(block)
        if allocated:
            assert block not in self.model
            self.model[block] = 0
            self.total_allocations += 1
        self.model[block] += 1
        self.total_writes += 1
        assert entry.writes == self.model[block]

    @rule()
    def drain_oldest(self):
        if not self.model:
            return
        drained = self.secpb.drain_oldest()
        oldest_block, count = next(iter(self.model.items()))
        assert drained.block_addr == oldest_block
        assert drained.writes == count
        del self.model[oldest_block]

    @rule(asid=st.just(0))
    def drain_all(self, asid):
        drained = self.secpb.drain_all()
        assert [d.block_addr for d in drained] == list(self.model)
        self.model.clear()

    @invariant()
    def occupancy_matches(self):
        assert self.secpb.occupancy == len(self.model)
        assert self.secpb.occupancy <= 6

    @invariant()
    def stats_conserved(self):
        assert self.secpb.stats.get("secpb.writes") == self.total_writes
        assert self.secpb.stats.get("secpb.allocations") == self.total_allocations

    @invariant()
    def lookups_agree(self):
        for block in range(16):
            entry = self.secpb.lookup(block)
            if block in self.model:
                assert entry is not None and entry.writes == self.model[block]
            else:
                assert entry is None


class StartGapModel(RuleBasedStateMachine):
    """Start-Gap mapping stays a gap-avoiding permutation forever."""

    LINES = 7

    def __init__(self):
        super().__init__()
        self.leveler = StartGapWearLeveler(lines=self.LINES, psi=2)

    @rule(line=st.integers(0, LINES - 1))
    def write(self, line):
        physical = self.leveler.write(line)
        assert 0 <= physical <= self.LINES

    @invariant()
    def mapping_is_injective_and_avoids_gap(self):
        mapped = [self.leveler.physical_of(i) for i in range(self.LINES)]
        assert len(set(mapped)) == self.LINES
        assert self.leveler.gap not in mapped
        assert all(0 <= p <= self.LINES for p in mapped)


TestSecPBModel = SecPBModel.TestCase
TestSecPBModel.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)

TestStartGapModel = StartGapModel.TestCase
TestStartGapModel.settings = settings(
    max_examples=30, stateful_step_count=80, deadline=None
)
