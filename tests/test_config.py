"""Tests for repro.sim.config — Table I encoding and validation."""

import dataclasses

import pytest

from repro.sim.config import (
    CACHE_BLOCK_BYTES,
    DEFAULT_CONFIG,
    SECPB_SIZE_SWEEP,
    CacheConfig,
    NVMConfig,
    SecPBConfig,
    SecurityConfig,
    SystemConfig,
)


class TestCacheConfig:
    def test_l1_geometry_matches_table1(self):
        l1 = DEFAULT_CONFIG.l1
        assert l1.size_bytes == 64 * 1024
        assert l1.ways == 8
        assert l1.block_bytes == 64
        assert l1.access_cycles == 2
        assert l1.num_blocks == 1024
        assert l1.num_sets == 128

    def test_l2_l3_geometry_matches_table1(self):
        assert DEFAULT_CONFIG.l2.size_bytes == 512 * 1024
        assert DEFAULT_CONFIG.l2.ways == 16
        assert DEFAULT_CONFIG.l2.access_cycles == 20
        assert DEFAULT_CONFIG.l3.size_bytes == 4 * 1024**2
        assert DEFAULT_CONFIG.l3.ways == 32
        assert DEFAULT_CONFIG.l3.access_cycles == 30

    def test_metadata_caches_match_table1(self):
        for cache in (
            DEFAULT_CONFIG.counter_cache,
            DEFAULT_CONFIG.mac_cache,
            DEFAULT_CONFIG.bmt_cache,
        ):
            assert cache.size_bytes == 128 * 1024
            assert cache.ways == 8
            assert cache.access_cycles == 2

    def test_size_must_be_block_multiple(self):
        with pytest.raises(ValueError, match="not a multiple"):
            CacheConfig("bad", size_bytes=100, ways=2)

    def test_blocks_must_divide_into_ways(self):
        with pytest.raises(ValueError, match="not divisible"):
            CacheConfig("bad", size_bytes=64 * 3, ways=2)


class TestSecPBConfig:
    def test_defaults_match_table1(self):
        secpb = SecPBConfig()
        assert secpb.entries == 32
        assert secpb.entry_bytes == 260
        assert secpb.access_cycles == 2
        assert secpb.high_watermark == 0.75

    def test_watermark_entries(self):
        secpb = SecPBConfig(entries=32)
        assert secpb.high_watermark_entries == 24
        assert secpb.low_watermark_entries == 12

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            SecPBConfig(entries=0)

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError):
            SecPBConfig(high_watermark=0.5, low_watermark=0.6)

    def test_rejects_out_of_range_high_watermark(self):
        with pytest.raises(ValueError):
            SecPBConfig(high_watermark=1.5)

    @pytest.mark.parametrize("entries", SECPB_SIZE_SWEEP)
    def test_sweep_sizes_are_valid(self, entries):
        secpb = SecPBConfig(entries=entries)
        assert 0 < secpb.low_watermark_entries < secpb.high_watermark_entries <= entries


class TestSecurityConfig:
    def test_defaults_match_table1(self):
        sec = SecurityConfig()
        assert sec.bmt_levels == 8
        assert sec.mac_latency_cycles == 40
        assert sec.bmt_update_cycles == 320

    def test_bmt_update_cycles_scale_with_height(self):
        assert SecurityConfig(bmt_levels=2).bmt_update_cycles == 80
        assert SecurityConfig(bmt_levels=5).bmt_update_cycles == 200


class TestSystemConfig:
    def test_ns_to_cycles_at_4ghz(self):
        cfg = SystemConfig()
        assert cfg.ns_to_cycles(55.0) == 220
        assert cfg.ns_to_cycles(150.0) == 600

    def test_nvm_latencies(self):
        cfg = SystemConfig()
        assert cfg.nvm_read_cycles == 220
        assert cfg.nvm_write_cycles == 600

    def test_memory_round_trip_includes_all_levels(self):
        cfg = SystemConfig()
        assert cfg.memory_round_trip_cycles == 2 + 20 + 30 + 220

    def test_with_secpb_entries_returns_new_config(self):
        cfg = SystemConfig()
        bigger = cfg.with_secpb_entries(512)
        assert bigger.secpb.entries == 512
        assert cfg.secpb.entries == 32  # original unchanged
        assert bigger.l1 == cfg.l1

    def test_with_bmt_levels_returns_new_config(self):
        cfg = SystemConfig()
        dbmf = cfg.with_bmt_levels(2)
        assert dbmf.security.bmt_levels == 2
        assert cfg.security.bmt_levels == 8

    def test_config_is_frozen(self):
        cfg = SystemConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.clock_ghz = 3.0

    def test_nvm_defaults(self):
        nvm = NVMConfig()
        assert nvm.size_bytes == 8 * 1024**3
        assert nvm.read_ns == 55.0
        assert nvm.write_ns == 150.0
        assert nvm.write_queue_entries == 128
        assert nvm.read_queue_entries == 64

    def test_block_size_constant(self):
        assert CACHE_BLOCK_BYTES == 64
