"""Tests for repro.cli — the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "not-a-benchmark"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cobcm" in out
        assert "table4" in out
        assert "gamess" in out

    def test_advisor(self, capsys):
        assert main(["advisor", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "recommended: cm" in out

    def test_advisor_li_thin_with_store_buffer(self, capsys):
        assert main(["advisor", "1.0", "--technology", "li-thin", "--store-buffer"]) == 0
        assert "Li-Thin" in capsys.readouterr().out

    def test_recover_demo(self, capsys):
        assert main(["recover-demo", "--scheme", "cobcm"]) == 0
        out = capsys.readouterr().out
        assert "recovery ok: True" in out
        assert "failed for 64/64" in out

    def test_simulate_single_scheme(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "leslie3d",
                    "--scheme",
                    "cm",
                    "--num-ops",
                    "2000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bbb" in out
        assert "cm" in out
        assert "overhead" in out

    def test_experiment_table5(self, capsys):
        assert main(["experiment", "table5"]) == 0
        assert "s_eadr" in capsys.readouterr().out

    def test_experiment_table4_small(self, capsys):
        assert main(["experiment", "table4", "--num-ops", "1500"]) == 0
        assert "cobcm" in capsys.readouterr().out


class TestExtensionCommands:
    def test_recovery_time(self, capsys):
        from repro.cli import main

        assert main(["recovery-time", "--entries", "8"]) == 0
        out = capsys.readouterr().out
        assert "cobcm" in out and "us total" in out

    def test_multicore(self, capsys):
        from repro.cli import main

        assert main(["multicore", "--scheme", "cobcm", "--num-ops", "600"]) == 0
        out = capsys.readouterr().out
        assert "8 core(s)" in out
        assert "migrations" in out

    def test_workloads(self, capsys):
        from repro.cli import main

        assert main(["workloads", "--num-ops", "2000"]) == 0
        out = capsys.readouterr().out
        assert "gamess" in out and "NWPE" in out


class TestLintCommand:
    def test_lint_src_clean(self, capsys):
        from repro.cli import main

        assert main(["lint", "src"]) == 0
        assert "secpb-lint: clean" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "SPB101" in out and "SPB403" in out

    def test_lint_select_forwarded(self, capsys, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("jobs = run_jobs((i for i in range(3)))\n")
        assert main(["lint", str(bad), "--select", "SPB403"]) == 1
        assert "SPB403" in capsys.readouterr().out
