"""Tests for repro.cli — the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "not-a-benchmark"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cobcm" in out
        assert "table4" in out
        assert "gamess" in out

    def test_advisor(self, capsys):
        assert main(["advisor", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "recommended: cm" in out

    def test_advisor_li_thin_with_store_buffer(self, capsys):
        assert main(["advisor", "1.0", "--technology", "li-thin", "--store-buffer"]) == 0
        assert "Li-Thin" in capsys.readouterr().out

    def test_recover_demo(self, capsys):
        assert main(["recover-demo", "--scheme", "cobcm"]) == 0
        out = capsys.readouterr().out
        assert "recovery ok: True" in out
        assert "failed for 64/64" in out

    def test_simulate_single_scheme(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "leslie3d",
                    "--scheme",
                    "cm",
                    "--num-ops",
                    "2000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bbb" in out
        assert "cm" in out
        assert "overhead" in out

    def test_experiment_table5(self, capsys):
        assert main(["experiment", "table5"]) == 0
        assert "s_eadr" in capsys.readouterr().out

    def test_experiment_table4_small(self, capsys):
        assert main(["experiment", "table4", "--num-ops", "1500"]) == 0
        assert "cobcm" in capsys.readouterr().out


class TestExtensionCommands:
    def test_recovery_time(self, capsys):
        from repro.cli import main

        assert main(["recovery-time", "--entries", "8"]) == 0
        out = capsys.readouterr().out
        assert "cobcm" in out and "us total" in out

    def test_multicore(self, capsys):
        from repro.cli import main

        assert main(["multicore", "--scheme", "cobcm", "--num-ops", "600"]) == 0
        out = capsys.readouterr().out
        assert "8 core(s)" in out
        assert "migrations" in out

    def test_workloads(self, capsys):
        from repro.cli import main

        assert main(["workloads", "--num-ops", "2000"]) == 0
        out = capsys.readouterr().out
        assert "gamess" in out and "NWPE" in out


class TestLintCommand:
    def test_lint_src_clean(self, capsys):
        from repro.cli import main

        assert main(["lint", "src"]) == 0
        assert "secpb-lint: clean" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "SPB101" in out and "SPB403" in out

    def test_lint_select_forwarded(self, capsys, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("jobs = run_jobs((i for i in range(3)))\n")
        assert main(["lint", str(bad), "--select", "SPB403"]) == 1
        assert "SPB403" in capsys.readouterr().out

    def test_lint_lists_robustness_rule(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        assert "SPB501" in capsys.readouterr().out


class TestFaultCampaignCommand:
    def test_small_campaign_passes(self, capsys):
        code = main(
            [
                "faultcampaign",
                "--schemes", "cobcm",
                "--crash-points", "1",
                "--num-stores", "20",
                "--no-minimize",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failed" in out
        assert "cobcm" in out

    def test_unknown_scheme_fails_fast(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            main(["faultcampaign", "--schemes", "not-a-scheme"])

    def test_save_report_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "report.json"
        code = main(
            [
                "faultcampaign",
                "--schemes", "nogap",
                "--crash-points", "1",
                "--num-stores", "20",
                "--no-minimize",
                "--save", str(path),
            ]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["failed"] == []
        assert payload["total"] > 0

    def test_replay_saved_reproducer(self, capsys, tmp_path):
        from repro.fault import FaultCase, save_reproducer

        case = FaultCase(
            case_id="replay/demo",
            scheme="cobcm",
            crash_kind="system",
            seed=3,
            num_stores=20,
            crash_index=10,
            working_set=12,
            num_asids=2,
        )
        path = save_reproducer(case, tmp_path / "case.json")
        assert main(["faultcampaign", "--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "PASS replay/demo" in out


class TestResumableFlags:
    """ISSUE 5: --journal/--resume/--deadline wiring and guard rails."""

    def _case(self, **overrides):
        from repro.fault import FaultCase

        defaults = dict(
            case_id="replay/demo",
            scheme="cobcm",
            crash_kind="system",
            seed=3,
            num_stores=20,
            crash_index=10,
            working_set=12,
            num_asids=2,
        )
        defaults.update(overrides)
        return FaultCase(**defaults)

    def test_deadline_requires_journal_experiment(self):
        with pytest.raises(SystemExit, match="requires --journal"):
            main(["experiment", "table4", "--deadline", "5"])

    def test_deadline_requires_journal_faultcampaign(self):
        with pytest.raises(SystemExit, match="requires --journal"):
            main(
                ["faultcampaign", "--schemes", "cobcm", "--deadline", "5"]
            )

    def test_journal_rejected_for_instant_experiments(self, tmp_path):
        with pytest.raises(SystemExit, match="trace-driven"):
            main(
                [
                    "experiment", "table5",
                    "--journal", str(tmp_path / "j.jsonl"),
                ]
            )

    def test_experiment_journal_then_resume_identical(self, capsys, tmp_path):
        journal = tmp_path / "exp.jsonl"
        args = ["experiment", "table4", "--num-ops", "1500"]
        assert main(args) == 0
        baseline = capsys.readouterr().out
        assert main(args + ["--journal", str(journal)]) == 0
        journaled = capsys.readouterr().out
        assert journaled == baseline
        # Every job is journaled, so the resume re-runs nothing and
        # renders the identical artifact.
        assert main(args + ["--resume", str(journal)]) == 0
        assert capsys.readouterr().out == baseline

    def test_experiment_resume_stale_journal_fails(self, capsys, tmp_path):
        journal = tmp_path / "exp.jsonl"
        assert main(
            [
                "experiment", "table4", "--num-ops", "1500",
                "--journal", str(journal),
            ]
        ) == 0
        capsys.readouterr()
        # Different num_ops -> different spec fingerprint -> stale.
        assert main(
            [
                "experiment", "table4", "--num-ops", "2000",
                "--resume", str(journal),
            ]
        ) == 2
        assert "different spec" in capsys.readouterr().err

    def test_campaign_journal_then_resume_identical(self, capsys, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        args = [
            "faultcampaign", "--schemes", "cobcm", "--crash-points", "1",
            "--num-stores", "20", "--no-minimize",
        ]
        assert main(args) == 0
        baseline = capsys.readouterr().out
        assert main(args + ["--journal", str(journal)]) == 0
        capsys.readouterr()
        assert main(args + ["--resume", str(journal)]) == 0
        assert capsys.readouterr().out == baseline

    def test_campaign_resume_stale_journal_fails(self, capsys, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        assert main(
            [
                "faultcampaign", "--schemes", "cobcm", "--crash-points", "1",
                "--num-stores", "20", "--no-minimize",
                "--journal", str(journal),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "faultcampaign", "--schemes", "nogap", "--crash-points", "1",
                "--num-stores", "20", "--no-minimize",
                "--resume", str(journal),
            ]
        ) == 2
        assert "different spec" in capsys.readouterr().err

    def test_replay_divergence_exits_three_with_diff(self, capsys, tmp_path):
        import dataclasses

        from repro.fault import save_reproducer
        from repro.fault.campaign import execute_case

        case = self._case()
        real = execute_case(case)
        tampered = dataclasses.replace(real, observed="something-else")
        path = save_reproducer(case, tmp_path / "case.json", result=tampered)
        assert main(["faultcampaign", "--replay", str(path)]) == 3
        out = capsys.readouterr().out
        assert "DIVERGED replay/demo" in out
        assert "--- recorded verdict" in out
        assert "+++ replayed verdict" in out
        assert "something-else" in out

    def test_replay_matching_verdict_passes(self, capsys, tmp_path):
        from repro.fault import save_reproducer
        from repro.fault.campaign import execute_case

        case = self._case()
        path = save_reproducer(
            case, tmp_path / "case.json", result=execute_case(case)
        )
        assert main(["faultcampaign", "--replay", str(path)]) == 0
        assert "PASS replay/demo" in capsys.readouterr().out

    def test_replay_version1_reproducer_still_pass_fail(self, capsys, tmp_path):
        # A version-1 file (no recorded_result) can never diverge; the
        # verdict is plain pass/fail, asserting today's documented
        # behavior for pre-ISSUE-5 reproducers.
        import json

        from repro.fault import case_to_dict

        payload = case_to_dict(self._case())
        payload["version"] = 1
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(payload))
        assert main(["faultcampaign", "--replay", str(path)]) == 0
        assert "PASS replay/demo" in capsys.readouterr().out


class TestTraceCommand:
    """ISSUE 6: the `repro trace` subcommand."""

    def test_writes_schema_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs import load_trace_schema, validate

        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace", "--benchmark", "gamess", "--scheme", "m",
                    "--num-ops", "2000", "--out", str(out),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "trace event(s)" in captured.out
        assert "Perfetto" in captured.err
        payload = json.loads(out.read_text())
        assert validate(payload, load_trace_schema()) == []

    def test_jsonl_and_metrics_sidecars(self, capsys, tmp_path):
        import json

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "trace", "--num-ops", "1500", "--out", str(out),
                    "--jsonl", str(jsonl), "--metrics", str(metrics),
                ]
            )
            == 0
        )
        capsys.readouterr()
        lines = jsonl.read_text().splitlines()
        assert lines and all(json.loads(line)["name"] for line in lines)
        payload = json.loads(metrics.read_text())
        assert payload["sim.runs"]["value"] == 1.0
        assert payload["sim.runs_by_scheme.m"]["value"] == 1.0

    def test_bbb_baseline_traces(self, capsys, tmp_path):
        out = tmp_path / "bbb.json"
        assert (
            main(
                [
                    "trace", "--scheme", "bbb", "--num-ops", "1000",
                    "--out", str(out),
                ]
            )
            == 0
        )
        assert "scheme bbb" in capsys.readouterr().out
        assert out.exists()

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--scheme", "nope"])


class TestObservabilityFlags:
    """ISSUE 6: --metrics/--trace on experiment and faultcampaign, and
    the unified --verbose/--quiet pair on every subcommand."""

    def test_experiment_metrics_and_trace(self, capsys, tmp_path):
        import json

        from repro.obs import load_trace_schema, validate

        metrics = tmp_path / "exp.prom"
        trace = tmp_path / "exp-trace.json"
        assert (
            main(
                [
                    "experiment", "table4", "--num-ops", "1500",
                    "--metrics", str(metrics), "--trace", str(trace),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "cobcm" in captured.out
        assert "metrics saved to" in captured.err
        assert "trace saved to" in captured.err
        text = metrics.read_text()
        # 18 benchmarks x (1 bbb baseline + 6 schemes) = 126 jobs.
        assert "runner_tasks_completed 126" in text
        payload = json.loads(trace.read_text())
        assert validate(payload, load_trace_schema()) == []
        jobs = [e for e in payload["traceEvents"] if e["name"] == "runner.job"]
        assert len(jobs) == 126

    def test_metrics_rejected_for_instant_experiments(self, tmp_path):
        with pytest.raises(SystemExit, match="trace-driven"):
            main(
                [
                    "experiment", "table5",
                    "--metrics", str(tmp_path / "m.prom"),
                ]
            )

    def test_faultcampaign_metrics_json(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "campaign.json"
        assert (
            main(
                [
                    "faultcampaign", "--schemes", "m", "--crash-points", "1",
                    "--num-stores", "20", "--no-minimize",
                    "--metrics", str(metrics),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(metrics.read_text())
        assert payload["campaign.pass_rate"]["value"] == 1.0
        assert (
            payload["campaign.cases_total"]["value"]
            == payload["campaign.cases_passed"]["value"]
        )

    def test_verbose_and_quiet_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["list", "-v", "-q"])

    def test_every_subcommand_accepts_verbosity_flags(self):
        parser = build_parser()
        for argv in (
            ["list", "-v"],
            ["simulate", "gamess", "-q"],
            ["experiment", "table4", "--verbose"],
            ["faultcampaign", "--quiet"],
            ["trace", "-v"],
            ["multicore", "-q"],
            ["lint", "-v"],
        ):
            args = parser.parse_args(argv)
            assert hasattr(args, "verbose") and hasattr(args, "quiet")

    def test_multicore_warmup_flag(self, capsys):
        assert (
            main(
                [
                    "multicore", "--scheme", "m", "--num-ops", "600",
                    "--warmup", "0.25",
                ]
            )
            == 0
        )
        assert "8 core(s)" in capsys.readouterr().out


class TestChaosCommand:
    """ISSUE 9: the `repro chaos` subcommand."""

    def test_unknown_fault_kind_exits_two(self, capsys):
        assert main(["chaos", "--faults", "power_loss"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_unusable_reproducer_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "nope.json"
        bad.write_text("{}")
        assert main(["chaos", "--replay", str(bad)]) == 2
        assert "unusable reproducer" in capsys.readouterr().err

    def test_single_soak_iteration_reports_and_saves(self, capsys, tmp_path):
        import json

        from repro.durability import ArtifactStatus, verify_artifact

        report_path = tmp_path / "report.json"
        code = main(
            [
                "chaos",
                "--seed", "2023",
                "--minutes", "1.0",
                "--max-iterations", "1",
                "--jobs", "1",
                "--workdir", str(tmp_path / "work"),
                "--save", str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "envfault soak: 1 state(s) checked" in out
        assert "all invariants held" in out
        assert verify_artifact(report_path) is ArtifactStatus.OK
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["mode"] == "soak"
