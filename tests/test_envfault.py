"""The environment-fault plane: plans, contexts, shims, checker, shrink.

Acceptance anchors (ISSUE 9):

* fault plans are pure functions of their seed, round-trip through
  versioned JSON, and reject malformed specs loudly;
* the injection context fires by ``(op, occurrence)`` exactly, records
  every hit, and coordinates one-shot faults across processes via
  ``claim_once`` markers;
* the filesystem shims implement the documented fault semantics —
  a torn write leaves exactly ``arg`` bytes on disk, ENOSPC strikes
  before any bytes move, a lying fsync returns success;
* the ``SECPB_ENVFAULT`` gate arms a plan at import in every process
  and refuses to be silently misconfigured;
* chaos reproducers save/load as versioned verified artifacts, and the
  shrinker reduces a violating plan to a minimal one that still
  violates the *same* invariant.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.envfault import (
    ALL_KINDS,
    DEFAULT_HORIZON,
    EnvFaultContext,
    FaultPlan,
    FaultSpec,
    PlanError,
    activate,
    current,
    deactivate,
    injected,
    load_plan,
    random_plan,
)
from repro.envfault import context as context_mod
from repro.envfault import fsfault


PLAN = FaultPlan(
    seed=7,
    specs=(
        FaultSpec(op="journal.write", index=2, kind="enospc"),
        FaultSpec(op="shm.attach", index=0, kind="attach_enoent", count=2),
    ),
)


class TestFaultSpec:
    def test_unknown_op_rejected(self):
        with pytest.raises(PlanError, match="unknown fault op"):
            FaultSpec(op="journal.flush", index=0, kind="enospc")

    def test_kind_must_match_op(self):
        with pytest.raises(PlanError, match="cannot fire at op"):
            FaultSpec(op="journal.write", index=0, kind="worker_sigkill")

    def test_negative_index_rejected(self):
        with pytest.raises(PlanError, match="index must be"):
            FaultSpec(op="journal.write", index=-1, kind="enospc")

    def test_zero_count_rejected(self):
        with pytest.raises(PlanError, match="count must be"):
            FaultSpec(op="journal.write", index=0, kind="enospc", count=0)

    def test_hits_window(self):
        spec = FaultSpec(op="shm.attach", index=3, kind="attach_enoent", count=2)
        assert [spec.hits(i) for i in range(6)] == [
            False, False, False, True, True, False,
        ]


class TestFaultPlan:
    def test_json_roundtrip(self):
        restored = FaultPlan.from_json(PLAN.to_json())
        assert restored == PLAN

    def test_unknown_version_rejected(self):
        payload = PLAN.to_payload()
        payload["plan_version"] = 99
        with pytest.raises(PlanError, match="version"):
            FaultPlan.from_payload(payload)

    def test_bad_spec_payload_rejected(self):
        with pytest.raises(PlanError, match="bad fault spec"):
            FaultSpec.from_payload({"op": "journal.write"})

    def test_load_plan_inline_json(self):
        assert load_plan(PLAN.to_json()) == PLAN

    def test_load_plan_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(PLAN.to_json())
        assert load_plan(path) == PLAN

    def test_load_plan_missing_file(self, tmp_path):
        with pytest.raises(PlanError, match="neither inline JSON nor a file"):
            load_plan(tmp_path / "nope.json")

    def test_not_json_rejected(self):
        with pytest.raises(PlanError, match="not valid JSON"):
            load_plan("{broken")


class TestRandomPlan:
    def test_deterministic_per_seed(self):
        assert random_plan(11) == random_plan(11)
        assert random_plan(11) != random_plan(12)

    def test_specs_validate_and_bound(self):
        for seed in range(30):
            plan = random_plan(seed, ops=3)
            assert 1 <= len(plan.specs) <= 3
            for spec in plan.specs:
                assert spec.index < DEFAULT_HORIZON
                if spec.kind == "torn_write":
                    assert spec.arg >= 1

    def test_at_most_one_process_fault(self):
        # Two pool casualties can exhaust the single retry budget by
        # construction; the generator must never stack them.
        for seed in range(60):
            plan = random_plan(seed, ops=10)
            proc = [
                s for s in plan.specs
                if s.op in ("worker.task", "runner.harvest")
            ]
            assert len(proc) <= 1

    def test_one_fault_per_site(self):
        for seed in range(30):
            plan = random_plan(seed, ops=10)
            ops = [spec.op for spec in plan.specs]
            assert len(ops) == len(set(ops))

    def test_kind_restriction(self):
        plan = random_plan(5, ops=4, kinds=("enospc",))
        assert plan.specs
        assert all(spec.kind == "enospc" for spec in plan.specs)

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown fault kind"):
            random_plan(5, kinds=("power_loss",))

    def test_no_usable_sites_rejected(self):
        with pytest.raises(PlanError, match="no usable injection sites"):
            random_plan(5, kinds=("enospc",), sites=("shm.attach",))


class _Tracer:
    def __init__(self):
        self.events = []

    def instant(self, name, cat=None, args=None):
        self.events.append((name, cat, args))


class TestContext:
    def test_fire_keys_on_occurrence(self):
        context = EnvFaultContext(PLAN)
        assert context.fire("journal.write") is None
        assert context.fire("journal.write") is None
        spec = context.fire("journal.write")
        assert spec is not None and spec.kind == "enospc"
        assert context.fire("journal.write") is None
        assert [f.occurrence for f in context.fired] == [2]

    def test_count_spans_consecutive_occurrences(self):
        context = EnvFaultContext(PLAN)
        hits = [context.fire("shm.attach") is not None for _ in range(4)]
        assert hits == [True, True, False, False]

    def test_ops_counted_independently(self):
        context = EnvFaultContext(PLAN)
        for _ in range(3):
            context.fire("artifact.write")
        assert context.fire("journal.write") is None  # occurrence 0

    def test_tracer_sees_fired_faults(self):
        tracer = _Tracer()
        context = EnvFaultContext(PLAN, tracer=tracer)
        for _ in range(3):
            context.fire("journal.write")
        assert tracer.events == [
            ("envfault.enospc", "envfault",
             {"op": "journal.write", "occurrence": 2}),
        ]

    def test_snapshot_is_deterministic_summary(self):
        context = EnvFaultContext(PLAN)
        for _ in range(3):
            context.fire("journal.write")
        snap = context.snapshot()
        assert snap["counts"] == {"journal.write": 3}
        assert snap["fired"] == [
            {"kind": "enospc", "occurrence": 2, "op": "journal.write"},
        ]

    def test_claim_once_without_scratch_always_wins(self):
        context = EnvFaultContext(PLAN)
        assert context.claim_once("worker.task", 5)
        assert context.claim_once("worker.task", 5)

    def test_claim_once_with_scratch_single_winner(self, tmp_path):
        # Two contexts model two forked workers with inherited counters.
        first = EnvFaultContext(PLAN, scratch=str(tmp_path))
        second = EnvFaultContext(PLAN, scratch=str(tmp_path))
        assert first.claim_once("worker.task", 5)
        assert not second.claim_once("worker.task", 5)
        assert not first.claim_once("worker.task", 5)
        assert second.claim_once("worker.task", 6)  # distinct occurrence

    def test_injected_restores_previous(self):
        assert context_mod.CURRENT is None
        with injected(PLAN) as context:
            assert context_mod.CURRENT is context
            assert current() is context
        assert context_mod.CURRENT is None

    def test_current_override_beats_global(self):
        override = EnvFaultContext(PLAN)
        with injected(PLAN):
            assert current(override) is override
        assert current(override) is override

    def test_activate_deactivate(self):
        context = activate(EnvFaultContext(PLAN))
        try:
            assert current() is context
        finally:
            deactivate()
        assert current() is None


class TestEnvGate:
    @pytest.fixture(autouse=True)
    def clean_context(self):
        yield
        deactivate()

    def test_unset_or_zero_is_off(self, monkeypatch):
        for value in ("", "0", "  "):
            monkeypatch.setenv(context_mod.ENVFAULT_ENV, value)
            context_mod._install_from_env()
            assert context_mod.CURRENT is None

    def test_file_plan_installs_with_scratch(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        path.write_text(PLAN.to_json())
        monkeypatch.setenv(context_mod.ENVFAULT_ENV, str(path))
        context_mod._install_from_env()
        assert context_mod.CURRENT is not None
        assert context_mod.CURRENT.plan == PLAN
        # One-shot markers land next to the plan file, shared by every
        # process the env var reaches.
        assert context_mod.CURRENT._scratch == str(tmp_path)

    def test_inline_plan_installs_without_scratch(self, monkeypatch):
        monkeypatch.setenv(context_mod.ENVFAULT_ENV, PLAN.to_json())
        context_mod._install_from_env()
        assert context_mod.CURRENT is not None
        assert context_mod.CURRENT._scratch is None

    def test_misconfiguration_is_loud(self, monkeypatch, tmp_path):
        monkeypatch.setenv(context_mod.ENVFAULT_ENV, str(tmp_path / "no.json"))
        with pytest.raises(RuntimeError, match="set but unusable"):
            context_mod._install_from_env()


def _context_for(op, kind, index=0, arg=0):
    plan = FaultPlan(
        seed=0, specs=(FaultSpec(op=op, index=index, kind=kind, arg=arg),)
    )
    return EnvFaultContext(plan)


class TestFsFault:
    def test_clean_occurrence_writes_through(self, tmp_path):
        context = _context_for("journal.write", "enospc", index=1)
        path = tmp_path / "out.txt"
        with open(path, "w") as handle:
            fsfault.write(handle, "hello\n", "journal.write", context)
        assert path.read_text() == "hello\n"

    def test_enospc_strikes_before_bytes_move(self, tmp_path):
        context = _context_for("journal.write", "enospc")
        path = tmp_path / "out.txt"
        with open(path, "w") as handle:
            with pytest.raises(OSError, match="no space left"):
                fsfault.write(handle, "hello\n", "journal.write", context)
        assert path.read_text() == ""

    def test_torn_write_leaves_exact_prefix(self, tmp_path):
        context = _context_for("journal.write", "torn_write", arg=3)
        path = tmp_path / "out.txt"
        with open(path, "w") as handle:
            with pytest.raises(OSError, match="torn after 3"):
                fsfault.write(handle, "hello\n", "journal.write", context)
        assert path.read_text() == "hel"

    def test_eintr_is_interrupted_error(self, tmp_path):
        context = _context_for("journal.write", "eintr")
        with open(tmp_path / "out.txt", "w") as handle:
            with pytest.raises(InterruptedError):
                fsfault.write(handle, "x", "journal.write", context)

    def test_fsync_drop_lies_quietly(self, tmp_path):
        context = _context_for("journal.fsync", "fsync_drop")
        with open(tmp_path / "out.txt", "w") as handle:
            fsfault.fsync(handle.fileno(), "journal.fsync", context)
        assert [f.spec.kind for f in context.fired] == ["fsync_drop"]

    def test_rename_fail_leaves_target_unpublished(self, tmp_path):
        context = _context_for("artifact.rename", "rename_fail")
        src, dst = tmp_path / "tmp", tmp_path / "final"
        src.write_text("data")
        with pytest.raises(OSError, match="rename"):
            fsfault.replace(str(src), str(dst), "artifact.rename", context)
        assert src.exists() and not dst.exists()

    def test_rename_clean_occurrence_publishes(self, tmp_path):
        context = _context_for("artifact.rename", "rename_fail", index=1)
        src, dst = tmp_path / "tmp", tmp_path / "final"
        src.write_text("data")
        fsfault.replace(str(src), str(dst), "artifact.rename", context)
        assert dst.read_text() == "data"


class TestChaosReproducers:
    def _violation(self):
        from repro.envfault.check import Violation

        return Violation(
            state="soak_seed7", invariant="artifact-valid", detail="boom"
        )

    def test_save_load_roundtrip(self, tmp_path):
        from repro.envfault.check import (
            default_spec,
            load_chaos_reproducer,
            save_chaos_reproducer,
        )

        path = tmp_path / "chaos_7.json"
        save_chaos_reproducer(path, PLAN, default_spec(), self._violation())
        plan, spec, recorded = load_chaos_reproducer(path)
        assert plan == PLAN
        assert spec == default_spec()
        assert recorded["invariant"] == "artifact-valid"

    def test_unknown_version_rejected(self, tmp_path):
        from repro.durability import write_artifact
        from repro.envfault.check import (
            default_spec,
            load_chaos_reproducer,
            save_chaos_reproducer,
        )

        path = tmp_path / "chaos_7.json"
        save_chaos_reproducer(path, PLAN, default_spec(), self._violation())
        payload = json.loads(path.read_text())
        payload["version"] = 99
        write_artifact(path, json.dumps(payload))
        with pytest.raises(PlanError, match="reproducer version"):
            load_chaos_reproducer(path)

    def test_tampered_reproducer_refused(self, tmp_path):
        from repro.durability import ArtifactError
        from repro.envfault.check import (
            default_spec,
            load_chaos_reproducer,
            save_chaos_reproducer,
        )

        path = tmp_path / "chaos_7.json"
        save_chaos_reproducer(path, PLAN, default_spec(), self._violation())
        path.write_text(path.read_text().replace("enospc", "eio"))
        with pytest.raises(ArtifactError):
            load_chaos_reproducer(path)


class TestShrinkPlan:
    def test_shrinks_to_single_culprit_at_index_zero(self, tmp_path, monkeypatch):
        from repro.envfault import check as check_mod

        culprit = FaultSpec(op="journal.write", index=9, kind="enospc")
        noise = (
            FaultSpec(op="artifact.fsync", index=4, kind="fsync_drop"),
            FaultSpec(op="shm.attach", index=1, kind="attach_enoent"),
        )
        plan = FaultPlan(seed=3, specs=(noise[0], culprit, noise[1]))
        reference = check_mod.Violation(
            state="soak_seed3", invariant="resume-identical", detail="diverged"
        )

        def fake_iteration(workdir, spec, candidate, baseline, jobs):
            hit = any(
                s.op == "journal.write" and s.kind == "enospc"
                for s in candidate.specs
            )
            return (reference if hit else None), len(candidate.specs)

        monkeypatch.setattr(check_mod, "_soak_iteration", fake_iteration)
        best, violation = check_mod._shrink_plan(
            tmp_path, check_mod.default_spec(), plan, "baseline", 1, reference
        )
        assert violation is reference
        assert len(best.specs) == 1
        assert best.specs[0].op == "journal.write"
        assert best.specs[0].index == 0  # halved all the way down

    def test_shrink_keeps_original_when_nothing_smaller_violates(
        self, tmp_path, monkeypatch
    ):
        from repro.envfault import check as check_mod

        plan = FaultPlan(
            seed=3,
            specs=(
                FaultSpec(op="journal.write", index=0, kind="enospc"),
                FaultSpec(op="artifact.fsync", index=0, kind="fsync_drop"),
            ),
        )
        reference = check_mod.Violation(
            state="s", invariant="artifact-valid", detail="d"
        )

        def only_full_plan_violates(workdir, spec, candidate, baseline, jobs):
            hit = len(candidate.specs) == len(plan.specs)
            return (reference if hit else None), 0

        monkeypatch.setattr(
            check_mod, "_soak_iteration", only_full_plan_violates
        )
        best, violation = check_mod._shrink_plan(
            tmp_path, check_mod.default_spec(), plan, "baseline", 1, reference
        )
        assert best == plan
        assert violation is reference
