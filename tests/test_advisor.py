"""Tests for repro.energy.advisor — scheme choice under battery budgets."""

import pytest

from repro.core.schemes import SPECTRUM_ORDER, get_scheme
from repro.energy.advisor import (
    recommend,
    scheme_requirement_mm3,
    store_buffer_drain_energy_nj,
)
from repro.energy.costs import LI_THIN, SUPERCAP


class TestRequirement:
    def test_matches_battery_estimate(self):
        from repro.energy.battery import estimate_scheme

        requirement = scheme_requirement_mm3(get_scheme("cm"))
        assert requirement == pytest.approx(
            estimate_scheme(get_scheme("cm")).supercap_mm3
        )

    def test_store_buffer_adds_energy(self):
        base = scheme_requirement_mm3(get_scheme("cm"))
        with_sb = scheme_requirement_mm3(
            get_scheme("cm"), include_store_buffer=True
        )
        assert with_sb > base

    def test_store_buffer_energy_positive(self):
        assert store_buffer_drain_energy_nj() > 0


class TestRecommend:
    def test_generous_budget_picks_cobcm(self):
        assert recommend(100.0).best == "cobcm"

    def test_tight_budget_picks_cm_band(self):
        """~1 mm^3 SuperCap: the paper's budget-conscious choice is CM."""
        assert recommend(1.0).best == "cm"

    def test_tiny_budget_picks_nogap(self):
        result = recommend(0.30)
        assert result.best == "nogap"

    def test_impossible_budget_returns_none(self):
        result = recommend(0.001)
        assert result.best is None
        assert all(not fit.fits for fit in result.fits)

    def test_li_thin_fits_everything_small(self):
        result = recommend(1.0, LI_THIN)
        assert result.best == "cobcm"

    def test_all_schemes_reported(self):
        result = recommend(1.0)
        assert [fit.scheme for fit in result.fits] == SPECTRUM_ORDER

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            recommend(0.0)

    def test_str_rendering(self):
        text = str(recommend(1.0, SUPERCAP))
        assert "recommended: cm" in text
        assert "too big" in text

    def test_str_rendering_no_fit(self):
        assert "no scheme fits" in str(recommend(0.001))

    def test_requirements_monotone_with_laziness(self):
        result = recommend(100.0)
        required = [fit.required_mm3 for fit in result.fits]
        assert required == sorted(required, reverse=True)
