"""Tests for repro.security.engine — the functional secure memory."""

import pytest

from repro.security.counters import MINOR_LIMIT
from repro.security.engine import (
    CryptoEngine,
    RecoveryStatus,
    SecureMemory,
)


def blk(i):
    return bytes([i % 256]) * 64


class TestAtomicWrites:
    def test_persist_and_recover_one_block(self):
        memory = SecureMemory(atomic=True)
        memory.persist_block(5, blk(1))
        recovered = memory.recover_block(5)
        assert recovered.ok
        assert recovered.plaintext == blk(1)

    def test_overwrite_recovers_latest(self):
        memory = SecureMemory(atomic=True)
        memory.persist_block(5, blk(1))
        memory.persist_block(5, blk(2))
        assert memory.recover_block(5).plaintext == blk(2)

    def test_ciphertext_differs_across_versions(self):
        """Counter-mode freshness: same plaintext re-persisted produces a
        different ciphertext (counter advanced)."""
        memory = SecureMemory(atomic=True)
        memory.persist_block(5, blk(1))
        first = memory.nvm.read_block(5)
        memory.persist_block(5, blk(1))
        second = memory.nvm.read_block(5)
        assert first != second

    def test_recover_all(self):
        memory = SecureMemory(atomic=True)
        for i in range(10):
            memory.persist_block(i, blk(i))
        results = memory.recover_all()
        assert len(results) == 10
        assert all(r.ok for r in results.values())

    def test_unwritten_block_not_present(self):
        memory = SecureMemory(atomic=True)
        assert memory.recover_block(99).status is RecoveryStatus.NOT_PRESENT

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            SecureMemory().persist_block(0, b"tiny")

    def test_writes_counted(self):
        memory = SecureMemory(atomic=True)
        memory.persist_block(0, blk(0))
        memory.persist_block(1, blk(1))
        assert memory.writes == 2


class TestCounterOverflow:
    def test_minor_overflow_triggers_page_reencryption(self):
        """Split counters: when a minor wraps, the whole page re-encrypts
        under the new major and everything still recovers."""
        memory = SecureMemory(atomic=True)
        memory.persist_block(0, blk(7))  # neighbour in the same page
        for i in range(MINOR_LIMIT + 1):
            memory.persist_block(1, blk(i))
        assert memory.counters.overflows == 1
        assert memory.counters.page(0).major == 1
        # The neighbour was re-encrypted under the new major and verifies.
        recovered = memory.recover_block(0)
        assert recovered.ok, recovered.status
        assert recovered.plaintext == blk(7)
        recovered = memory.recover_block(1)
        assert recovered.ok
        assert recovered.plaintext == blk(MINOR_LIMIT)


class TestGappedWrites:
    def test_crash_discards_volatile_metadata(self):
        memory = SecureMemory(atomic=False)
        memory.persist_block(5, blk(1))
        memory.crash()
        assert memory.recover_block(5).status is RecoveryStatus.NOT_PRESENT

    def test_writeback_closes_gap(self):
        memory = SecureMemory(atomic=False)
        memory.persist_block(5, blk(1))
        memory.writeback_metadata()
        memory.crash()
        assert memory.recover_block(5).ok

    def test_stale_durable_metadata_fails_mac(self):
        memory = SecureMemory(atomic=False)
        memory.persist_block(5, blk(1))
        memory.writeback_metadata()
        memory.persist_block(5, blk(2))
        memory.crash()
        assert memory.recover_block(5).status is RecoveryStatus.MAC_FAILURE


class TestCustomEngine:
    def test_distinct_keys_produce_distinct_ciphertext(self):
        a = SecureMemory(engine=CryptoEngine(encryption_key=b"k" * 32))
        b = SecureMemory(engine=CryptoEngine(encryption_key=b"q" * 32))
        a.persist_block(0, blk(1))
        b.persist_block(0, blk(1))
        assert a.nvm.read_block(0) != b.nvm.read_block(0)

    def test_small_bmt_still_verifies(self):
        engine = CryptoEngine(bmt_height=3, bmt_arity=4)
        memory = SecureMemory(engine=engine)
        memory.persist_block(0, blk(1))
        assert memory.recover_block(0).ok
