"""Regression tests for simulator accounting fixes.

Two bugs are pinned here:

* **Warmup stats contamination** — the shared StatsCollector kept
  counting through the warmup region, so PPTI/NWPE and the Fig. 8
  update ratios mixed warmup and measured ops, and ``stats["ppti"]``
  divided warmup-inclusive allocations by warmup-inclusive instructions
  while the result reported measured-region instructions.  Counters are
  now snapshot-and-subtracted at the warmup boundary.

* **Backflow over-commit** — the allocation stall loop could break out
  with the SecPB still (effectively) full when the watermark policy
  yielded no drain targets; a forced drain now guarantees progress and
  the buffer can never hold more slots than its capacity.
"""

import pytest

from repro.baselines.strict import StrictPersistencySimulator
from repro.core.schemes import SCHEMES, SPECTRUM_ORDER, get_scheme
from repro.core.simulator import SecurePersistencySimulator
from repro.sim.config import SystemConfig
from repro.workloads.synthetic import uniform_trace, zipf_trace

WARMUP = 0.5


def _trace(num_ops=4000, seed=11):
    return zipf_trace(
        num_ops=num_ops,
        working_set_blocks=3000,
        zipf_alpha=0.8,
        store_fraction=0.6,
        burst_length=2,
        mean_gap=2.0,
        seed=seed,
        name="warmup-probe",
    )


def _measured_stores(trace, warmup_frac):
    warmup_ops = int(len(trace) * warmup_frac)
    return int(trace.is_store[warmup_ops:].sum())


class TestWarmupStatsExclusion:
    """Counters must cover only the measured region when warmup_frac > 0."""

    @pytest.fixture(params=["cm", "cobcm", None], ids=["cm", "cobcm", "bbb"])
    def result_and_trace(self, request):
        trace = _trace()
        scheme = get_scheme(request.param) if request.param else None
        sim = SecurePersistencySimulator(scheme=scheme)
        return sim.run(trace, WARMUP), trace

    def test_secpb_writes_equal_measured_region_stores(self, result_and_trace):
        # Every store increments secpb.writes exactly once, so the
        # corrected counter equals the store count after the boundary.
        result, trace = result_and_trace
        assert result.stats["secpb.writes"] == _measured_stores(trace, WARMUP)

    def test_instructions_stat_is_measured_region(self, result_and_trace):
        result, _ = result_and_trace
        assert result.stats["instructions"] == result.instructions

    def test_ppti_derived_from_measured_counters(self, result_and_trace):
        result, _ = result_and_trace
        expected = (
            1000.0 * result.stats["secpb.allocations"] / result.instructions
        )
        assert result.stats["ppti"] == pytest.approx(expected)

    def test_nwpe_derived_from_measured_counters(self, result_and_trace):
        result, _ = result_and_trace
        expected = result.stats["secpb.writes"] / result.stats["secpb.allocations"]
        assert result.stats["nwpe"] == pytest.approx(expected)

    def test_warmup_run_counts_less_than_full_run(self):
        trace = _trace()
        sim = SecurePersistencySimulator(scheme=get_scheme("cm"))
        full = sim.run(trace, 0.0)
        measured = sim.run(trace, WARMUP)
        assert measured.stats["secpb.writes"] < full.stats["secpb.writes"]
        assert (
            measured.stats["bmt.root_updates"] < full.stats["bmt.root_updates"]
        )

    def test_zero_warmup_unchanged(self):
        trace = _trace()
        sim = SecurePersistencySimulator(scheme=get_scheme("cm"))
        result = sim.run(trace, 0.0)
        assert result.stats["secpb.writes"] == int(trace.is_store.sum())
        assert result.stats["instructions"] == trace.instructions

    def test_strict_simulator_excludes_warmup_updates(self):
        trace = _trace()
        sim = StrictPersistencySimulator()
        full = sim.run(trace, 0.0)
        measured = sim.run(trace, WARMUP)
        # SP performs one root update + MAC per store.
        assert full.stats["bmt.root_updates"] == int(trace.is_store.sum())
        assert measured.stats["bmt.root_updates"] == _measured_stores(
            trace, WARMUP
        )
        assert measured.stats["instructions"] == measured.instructions


class TestBackflowOverCommit:
    """The SecPB must never hold more slots than its capacity."""

    def _run(self, entries, scheme_name, trace):
        config = SystemConfig().with_secpb_entries(entries)
        scheme = SCHEMES[scheme_name] if scheme_name else None
        sim = SecurePersistencySimulator(config=config, scheme=scheme)
        return sim.run(trace)

    @pytest.fixture
    def streaming_stores(self):
        # Distinct-address store stream: every store allocates, the worst
        # case for a tiny buffer.
        return uniform_trace(
            num_ops=1500,
            working_set_blocks=1500,
            store_fraction=0.9,
            mean_gap=1.0,
            seed=5,
            name="alloc-storm",
        )

    @pytest.mark.parametrize("scheme_name", SPECTRUM_ORDER + ["bbb"])
    def test_one_entry_secpb_never_over_commits(
        self, streaming_stores, scheme_name
    ):
        name = None if scheme_name == "bbb" else scheme_name
        result = self._run(1, name, streaming_stores)
        assert result.stats["secpb.peak_effective_occupancy"] <= 1
        assert result.stats["secpb.final_occupancy"] <= 1
        assert result.stats["secpb.allocations"] > 0

    @pytest.mark.parametrize("entries", [1, 2, 4, 32])
    def test_peak_occupancy_bounded_by_capacity(self, streaming_stores, entries):
        result = self._run(entries, "cobcm", streaming_stores)
        assert result.stats["secpb.peak_effective_occupancy"] <= entries

    def test_forced_drains_counted_when_watermark_policy_stalls(
        self, streaming_stores
    ):
        # With a 1-entry buffer the high watermark equals capacity and the
        # low watermark is 0; the in-flight drain of the previous entry
        # holds the only slot, so progress relies on the backflow wait (or
        # forced drain) path rather than silent over-commit.
        result = self._run(1, "nogap", streaming_stores)
        assert (
            result.stats.get("secpb.backflow_stalls", 0)
            + result.stats.get("secpb.forced_drains", 0)
        ) > 0
