"""Hardened-runner behavior: failure capture, retry, timeout, salvage.

The acceptance bar: a deliberately poisoned job inside a ``--jobs 4``
sweep must surface as a structured :class:`JobFailure` (with the worker
traceback) while every healthy job's result stays byte-identical to a
serial run — one bad job can no longer take down a whole campaign.
"""

import pickle
import time
from dataclasses import dataclass

import pytest

from repro.analysis.runner import (
    JobFailure,
    SimJob,
    SimSpec,
    run_jobs,
    run_tasks,
)


@dataclass(frozen=True)
class Task:
    key: str
    value: int = 0


def _double(task: Task) -> int:
    return task.value * 2


def _explode_on_boom(task: Task) -> int:
    if task.key == "boom":
        raise RuntimeError("poisoned task")
    return task.value * 2


def _fail_until_marker(task: Task) -> int:
    """Fails once per marker file, then succeeds (exercises the retry)."""
    from pathlib import Path

    marker = Path(task.key)
    if not marker.exists():
        marker.write_text("tried")
        raise RuntimeError("transient failure")
    return task.value


def _sleep_forever(task: Task) -> int:
    if task.key == "wedge":
        time.sleep(60)
    return task.value


def _sim_job(key, benchmark="povray", scheme="cm"):
    return SimJob(
        key=key,
        benchmark=benchmark,
        num_ops=1500,
        seed=1,
        warmup_frac=0.3,
        spec=SimSpec(scheme=scheme),
    )


class TestRunTasksBasics:
    def test_results_keyed_in_task_order(self):
        tasks = [Task("b", 2), Task("a", 1)]
        assert run_tasks(tasks, _double) == {"b": 4, "a": 2}
        assert list(run_tasks(tasks, _double)) == ["b", "a"]

    def test_empty_task_list(self):
        assert run_tasks([], _double) == {}

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate job keys"):
            run_tasks([Task("x"), Task("x")], _double)

    def test_unknown_on_error_mode_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_tasks([Task("x")], _double, on_error="ignore")

    def test_parallel_equals_serial(self):
        tasks = [Task(str(i), i) for i in range(8)]
        assert run_tasks(tasks, _double, workers=4) == run_tasks(tasks, _double)


class TestFailureCapture:
    def test_raise_mode_propagates_serial(self):
        tasks = [Task("ok", 1), Task("boom")]
        with pytest.raises(RuntimeError, match="poisoned"):
            run_tasks(tasks, _explode_on_boom, retries=0)

    def test_raise_mode_propagates_parallel(self):
        tasks = [Task("ok", 1), Task("boom")]
        with pytest.raises(RuntimeError, match="poisoned"):
            run_tasks(tasks, _explode_on_boom, workers=2, retries=0)

    def test_record_mode_captures_structured_failure(self):
        tasks = [Task("ok", 21), Task("boom"), Task("ok2", 4)]
        results = run_tasks(
            tasks, _explode_on_boom, on_error="record", retries=0
        )
        assert results["ok"] == 42
        assert results["ok2"] == 8
        failure = results["boom"]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "RuntimeError"
        assert failure.message == "poisoned task"
        assert "poisoned task" in failure.traceback
        assert "_explode_on_boom" in failure.traceback
        assert failure.attempts == 1
        assert not failure.timed_out

    def test_failure_record_is_picklable(self):
        failure = run_tasks(
            [Task("boom")], _explode_on_boom, on_error="record", retries=0
        )["boom"]
        assert pickle.loads(pickle.dumps(failure)) == failure

    def test_retry_grants_one_more_attempt(self, tmp_path):
        marker = str(tmp_path / "attempted")
        result = run_tasks(
            [Task(marker, 7)], _fail_until_marker, on_error="record", retries=1
        )
        assert result[marker] == 7  # first attempt failed, retry passed

    def test_exhausted_retries_report_attempt_count(self):
        failure = run_tasks(
            [Task("boom")], _explode_on_boom, on_error="record", retries=1
        )["boom"]
        assert failure.attempts == 2


class TestPoisonedSweepSalvage:
    """The acceptance scenario, on real SimJobs at --jobs 4."""

    def _jobs(self):
        healthy = [
            _sim_job((bench, scheme), benchmark=bench, scheme=scheme)
            for bench in ("gamess", "povray")
            for scheme in ("cm", "nogap")
        ]
        # A benchmark that does not exist poisons trace generation inside
        # the worker, after pickling succeeds.
        poisoned = _sim_job(("poisoned", "cm"), benchmark="no-such-benchmark")
        return healthy, healthy[:2] + [poisoned] + healthy[2:]

    def test_poisoned_job_recorded_healthy_results_identical(self):
        healthy, with_poison = self._jobs()
        serial_reference = run_jobs(healthy, workers=1)
        swept = run_jobs(
            with_poison, workers=4, on_error="record", retries=1
        )
        failure = swept[("poisoned", "cm")]
        assert isinstance(failure, JobFailure)
        assert failure.attempts == 2  # retried once before recording
        for job in healthy:
            assert swept[job.key] == serial_reference[job.key]

    def test_serial_record_mode_matches_parallel(self):
        _, with_poison = self._jobs()
        serial = run_jobs(with_poison, workers=1, on_error="record")
        parallel = run_jobs(with_poison, workers=4, on_error="record")
        for job in with_poison:
            s, p = serial[job.key], parallel[job.key]
            if isinstance(s, JobFailure):
                assert isinstance(p, JobFailure)
                assert (s.key, s.error_type) == (p.key, p.error_type)
            else:
                assert s == p


class TestTimeout:
    def test_wedged_task_times_out_others_salvaged(self):
        tasks = [Task("ok", 1), Task("wedge"), Task("ok2", 2)]
        results = run_tasks(
            tasks,
            _sleep_forever,
            workers=3,
            on_error="record",
            timeout=3.0,
        )
        assert results["ok"] == 1
        assert results["ok2"] == 2
        failure = results["wedge"]
        assert isinstance(failure, JobFailure)
        assert failure.timed_out
        assert failure.error_type == "TimeoutError"
        assert failure.attempts == 1  # timeouts are never retried

    def test_timeout_raise_mode_propagates(self):
        tasks = [Task("wedge")] * 1 + [Task("ok", 1)]
        with pytest.raises(TimeoutError, match="wedge"):
            run_tasks(
                tasks, _sleep_forever, workers=2, on_error="raise", timeout=2.0
            )
