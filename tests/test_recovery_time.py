"""Tests for repro.core.recovery_time — crash-to-consistency estimates."""

import pytest

from repro.core.recovery_time import (
    estimate_recovery_time,
    per_entry_drain_cycles,
    recovery_time_table,
)
from repro.core.schemes import SPECTRUM_ORDER, get_scheme
from repro.sim.config import SystemConfig


class TestPerEntry:
    def test_nogap_pays_only_data_and_metadata_writes(self):
        cycles = per_entry_drain_cycles(get_scheme("nogap"))
        assert cycles == 600 + 600  # data write + metadata writeback

    def test_cobcm_pays_everything(self):
        cycles = per_entry_drain_cycles(get_scheme("cobcm"))
        expected = (
            600  # data
            + 220 + 1  # counter fetch + increment
            + 40  # OTP
            + 8 * (220 + 40)  # BMT node fetch + hash per level
            + 40  # MAC
            + 600  # metadata writeback
        )
        assert cycles == expected

    def test_lazier_schemes_take_longer(self):
        values = [
            per_entry_drain_cycles(get_scheme(name)) for name in SPECTRUM_ORDER
        ]
        assert values == sorted(values, reverse=True)


class TestEstimates:
    def test_scales_with_secpb_size(self):
        small = estimate_recovery_time(
            get_scheme("cobcm"), SystemConfig().with_secpb_entries(8)
        )
        large = estimate_recovery_time(
            get_scheme("cobcm"), SystemConfig().with_secpb_entries(512)
        )
        assert large.total_cycles == pytest.approx(64 * small.total_cycles)

    def test_microseconds_conversion(self):
        estimate = estimate_recovery_time(get_scheme("cobcm"))
        assert estimate.total_us == pytest.approx(
            estimate.total_cycles / 4000.0
        )

    def test_default_cobcm_window_is_tens_of_microseconds(self):
        """Sanity: a 32-entry COBCM sec-sync completes in well under a
        millisecond — the paper's 'delaying observation is feasible'."""
        estimate = estimate_recovery_time(get_scheme("cobcm"))
        assert 5.0 < estimate.total_us < 100.0

    def test_table_covers_spectrum(self):
        table = recovery_time_table()
        assert set(table) == set(SPECTRUM_ORDER)
        assert table["cobcm"].total_cycles > table["nogap"].total_cycles
