"""Tests for repro.core.recovery_time — crash-to-consistency estimates."""

import pytest

from repro.core.crash import AppCrashPolicy, SecurePersistentSystem
from repro.core.recovery_time import (
    crash_recovery_time,
    estimate_recovery_time,
    per_entry_drain_cycles,
    recovery_time_table,
)
from repro.core.schemes import SPECTRUM_ORDER, get_scheme
from repro.sim.config import SystemConfig


class TestPerEntry:
    def test_nogap_pays_only_data_and_metadata_writes(self):
        cycles = per_entry_drain_cycles(get_scheme("nogap"))
        assert cycles == 600 + 600  # data write + metadata writeback

    def test_cobcm_pays_everything(self):
        cycles = per_entry_drain_cycles(get_scheme("cobcm"))
        expected = (
            600  # data
            + 220 + 1  # counter fetch + increment
            + 40  # OTP
            + 8 * (220 + 40)  # BMT node fetch + hash per level
            + 40  # MAC
            + 600  # metadata writeback
        )
        assert cycles == expected

    def test_lazier_schemes_take_longer(self):
        values = [
            per_entry_drain_cycles(get_scheme(name)) for name in SPECTRUM_ORDER
        ]
        assert values == sorted(values, reverse=True)


class TestEstimates:
    def test_scales_with_secpb_size(self):
        small = estimate_recovery_time(
            get_scheme("cobcm"), SystemConfig().with_secpb_entries(8)
        )
        large = estimate_recovery_time(
            get_scheme("cobcm"), SystemConfig().with_secpb_entries(512)
        )
        assert large.total_cycles == pytest.approx(64 * small.total_cycles)

    def test_microseconds_conversion(self):
        estimate = estimate_recovery_time(get_scheme("cobcm"))
        assert estimate.total_us == pytest.approx(
            estimate.total_cycles / 4000.0
        )

    def test_default_cobcm_window_is_tens_of_microseconds(self):
        """Sanity: a 32-entry COBCM sec-sync completes in well under a
        millisecond — the paper's 'delaying observation is feasible'."""
        estimate = estimate_recovery_time(get_scheme("cobcm"))
        assert 5.0 < estimate.total_us < 100.0

    def test_table_covers_spectrum(self):
        table = recovery_time_table()
        assert set(table) == set(SPECTRUM_ORDER)
        assert table["cobcm"].total_cycles > table["nogap"].total_cycles


class TestCrashRecoveryTime:
    """Actual-crash recovery time: zero-entry and brownout edge cases.

    The estimate path (full SecPB, worst case) is well-conditioned; the
    actual-crash path must stay well-defined when the crash drains
    nothing (empty SecPB) or a brownout loses part of the buffer —
    neither may divide by zero, and lost blocks are never billed as
    drained.
    """

    @pytest.mark.parametrize("scheme_name", SPECTRUM_ORDER)
    def test_zero_entry_crash_reports_zero_time(self, scheme_name):
        scheme = get_scheme(scheme_name)
        report = SecurePersistentSystem(scheme).crash()
        estimate = crash_recovery_time(report, scheme)
        assert report.entries_drained == 0
        assert estimate.entries == 0
        assert estimate.total_cycles == 0.0
        assert estimate.total_us == 0.0
        # Per-entry stays the scheme's worst case even with no entries.
        assert estimate.per_entry_cycles == per_entry_drain_cycles(scheme)

    @pytest.mark.parametrize("scheme_name", SPECTRUM_ORDER)
    @pytest.mark.parametrize(
        "policy", [AppCrashPolicy.DRAIN_ALL, AppCrashPolicy.DRAIN_PROCESS]
    )
    def test_app_crash_both_drain_policies(self, scheme_name, policy):
        scheme = get_scheme(scheme_name)
        system = SecurePersistentSystem(scheme)
        for i in range(12):
            system.store(i, bytes([i]) * 64, asid=i % 2)
        report = system.app_crash(0, policy=policy)
        estimate = crash_recovery_time(report, scheme)
        assert estimate.entries == report.entries_drained
        assert estimate.total_cycles == pytest.approx(
            report.entries_drained * estimate.per_entry_cycles
        )

    @pytest.mark.parametrize("scheme_name", SPECTRUM_ORDER)
    def test_brownout_excludes_lost_blocks(self, scheme_name):
        scheme = get_scheme(scheme_name)
        system = SecurePersistentSystem(scheme)
        for i in range(10):
            system.store(i, bytes([i]) * 64)
        report = system.crash(energy_budget_nj=50.0)
        assert report.unpersisted_blocks  # the brownout actually lost data
        estimate = crash_recovery_time(report, scheme)
        assert estimate.entries == report.entries_drained
        assert estimate.entries + len(report.unpersisted_blocks) == 10
        assert estimate.total_cycles == (
            report.entries_drained * estimate.per_entry_cycles
        )

    def test_partial_brownout_time_below_full_drain(self):
        scheme = get_scheme("cobcm")
        system = SecurePersistentSystem(scheme)
        for i in range(10):
            system.store(i, bytes([i]) * 64)
        partial = crash_recovery_time(
            system.crash(energy_budget_nj=50.0), scheme
        )
        full_system = SecurePersistentSystem(scheme)
        for i in range(10):
            full_system.store(i, bytes([i]) * 64)
        full = crash_recovery_time(full_system.crash(), scheme)
        assert partial.total_cycles < full.total_cycles
        assert full.entries == 10

    def test_microseconds_follow_clock(self):
        scheme = get_scheme("m")
        system = SecurePersistentSystem(scheme)
        for i in range(6):
            system.store(i, bytes([i]) * 64)
        estimate = crash_recovery_time(system.crash(), scheme)
        assert estimate.total_us == pytest.approx(
            estimate.total_cycles / 4000.0
        )

    def test_negative_entries_rejected(self):
        class Bogus:
            entries_drained = -1

        with pytest.raises(ValueError, match="non-negative"):
            crash_recovery_time(Bogus(), get_scheme("m"))
