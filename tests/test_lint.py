"""secpb-lint rule behavior: one trigger fixture per rule code,
suppression handling, selection, and the JSON report schema."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import lint_source, select_rules
from repro.lint.base import module_name_for_path, parse_suppressions
from repro.lint.findings import findings_to_json

SIM_MODULE = "repro.sim.fixture"
ANALYSIS_MODULE = "repro.analysis.fixture"


def lint_sim(source: str, **kwargs):
    """Lint a snippet as if it lived inside the simulated machine."""
    return lint_source(textwrap.dedent(source), "fixture.py", module=SIM_MODULE, **kwargs)


def codes(findings):
    return [f.code for f in findings]


# --- SPB101: unseeded RNG ------------------------------------------------


def test_spb101_global_random_module():
    findings = lint_sim(
        """
        import random

        def jitter():
            return random.random()
        """
    )
    assert codes(findings) == ["SPB101"]


def test_spb101_numpy_legacy_global():
    findings = lint_sim(
        """
        import numpy as np

        def noise(n):
            return np.random.rand(n)
        """
    )
    assert codes(findings) == ["SPB101"]


def test_spb101_unseeded_default_rng():
    findings = lint_sim(
        """
        import numpy as np

        def gen():
            return np.random.default_rng()
        """
    )
    assert codes(findings) == ["SPB101"]


def test_spb101_seeded_default_rng_is_clean():
    findings = lint_sim(
        """
        import numpy as np

        def gen(seed):
            return np.random.default_rng(seed)
        """
    )
    assert findings == []


def test_spb101_from_import_alias():
    findings = lint_sim(
        """
        from random import randint

        def pick():
            return randint(0, 7)
        """
    )
    assert codes(findings) == ["SPB101"]


# --- SPB102: wall-clock reads --------------------------------------------


def test_spb102_time_time():
    findings = lint_sim(
        """
        import time

        def stamp():
            return time.time()
        """
    )
    assert codes(findings) == ["SPB102"]


def test_spb102_datetime_now():
    findings = lint_sim(
        """
        from datetime import datetime

        def stamp():
            return datetime.now()
        """
    )
    assert codes(findings) == ["SPB102"]


def test_spb102_out_of_scope_module_is_clean():
    # perf_counter in analysis code (the runner's progress logging) is fine.
    findings = lint_source(
        textwrap.dedent(
            """
            import time

            def elapsed():
                return time.perf_counter()
            """
        ),
        "runner.py",
        module=ANALYSIS_MODULE,
    )
    assert findings == []


# --- SPB103: set iteration order -----------------------------------------


def test_spb103_for_loop_over_set_literal():
    findings = lint_sim(
        """
        def walk(sink):
            for x in {"a", "b"}:
                sink(x)
        """
    )
    assert codes(findings) == ["SPB103"]


def test_spb103_list_of_set_local():
    findings = lint_sim(
        """
        def order(items):
            pending = set(items)
            return list(pending)
        """
    )
    assert codes(findings) == ["SPB103"]


def test_spb103_fstring_of_set_expression():
    findings = lint_sim(
        """
        def describe(a, b):
            missing = set(a) - set(b)
            return f"missing: {missing}"
        """
    )
    assert codes(findings) == ["SPB103"]


def test_spb103_sorted_set_is_clean():
    findings = lint_sim(
        """
        def order(items):
            pending = set(items)
            return sorted(pending), len(pending)
        """
    )
    assert findings == []


def test_spb103_join_over_set():
    findings = lint_sim(
        """
        def label(parts):
            tags = {p.strip() for p in parts}
            return ",".join(tags)
        """
    )
    assert codes(findings) == ["SPB103"]


# --- SPB104: environment reads -------------------------------------------


def test_spb104_os_environ():
    findings = lint_sim(
        """
        import os

        def workers():
            return os.environ.get("JOBS", "1")
        """
    )
    assert codes(findings) == ["SPB104"]


def test_spb104_os_getenv():
    findings = lint_sim(
        """
        import os

        def workers():
            return os.getenv("JOBS")
        """
    )
    assert codes(findings) == ["SPB104"]


# --- SPB105: per-access counter-name construction -------------------------


def test_spb105_fstring_name_in_access_method():
    findings = lint_sim(
        """
        class Cache:
            def access(self, addr):
                self.stats.add(f"cache.{self.name}.hits")
        """
    )
    assert codes(findings) == ["SPB105"]


def test_spb105_concatenated_name():
    findings = lint_sim(
        """
        def record(stats, kind):
            stats.add("mdc." + kind + ".misses")
        """
    )
    assert codes(findings) == ["SPB105"]


def test_spb105_percent_format_name():
    findings = lint_sim(
        """
        def record(stats, kind):
            stats.add("mdc.%s.hits" % kind)
        """
    )
    assert codes(findings) == ["SPB105"]


def test_spb105_str_format_name():
    findings = lint_sim(
        """
        def record(stats, level):
            stats.set("bmt.level.{}".format(level), 1)
        """
    )
    assert codes(findings) == ["SPB105"]


def test_spb105_counter_binding_in_init_is_clean():
    # The sanctioned pattern: build the name once at construction time
    # and bind a closure for the per-access path.
    findings = lint_sim(
        """
        class Cache:
            def __init__(self, config):
                prefix = f"cache.{config.name}"
                self._count_hit = self.stats.counter(f"{prefix}.hits")

            def access(self, addr):
                self._count_hit()
        """
    )
    assert findings == []


def test_spb105_literal_name_in_access_method_is_clean():
    findings = lint_sim(
        """
        class NVM:
            def read(self, addr):
                self.stats.add("nvm.reads")
        """
    )
    assert findings == []


def test_spb105_dynamic_counter_call_outside_init():
    findings = lint_sim(
        """
        class Cache:
            def rebuild(self):
                self._count_hit = self.stats.counter(f"cache.{self.name}.hits")
        """
    )
    assert codes(findings) == ["SPB105"]


def test_spb105_out_of_scope_module_is_clean():
    findings = lint_source(
        textwrap.dedent(
            """
            def plot(stats, scheme):
                stats.add(f"plots.{scheme}")
            """
        ),
        "plots.py",
        module=ANALYSIS_MODULE,
    )
    assert findings == []


# --- SPB301-303: stats hygiene -------------------------------------------


def test_spb301_private_counter_access():
    findings = lint_sim(
        """
        def poke(stats):
            stats._counters["secpb.writes"] = 0
        """
    )
    assert "SPB301" in codes(findings)


def test_spb301_allowed_inside_collector_definition():
    findings = lint_sim(
        """
        class StatsCollector:
            def add(self, name):
                self._counters[name] = 1
        """
    )
    assert findings == []


def test_spb302_result_stats_assignment():
    findings = lint_sim(
        """
        def fixup(result):
            result.stats["ppti"] = 0.0
        """
    )
    assert "SPB302" in codes(findings)


def test_spb302_result_stats_update_call():
    findings = lint_sim(
        """
        def fixup(result, extra):
            result.stats.update(extra)
        """
    )
    assert "SPB302" in codes(findings)


def test_spb303_snapshot_without_subtract():
    findings = lint_sim(
        """
        def run(stats, trace):
            boundary = stats.snapshot()
            return boundary
        """
    )
    assert codes(findings) == ["SPB303"]


def test_spb303_snapshot_with_subtract_is_clean():
    findings = lint_sim(
        """
        def run(stats, trace):
            boundary = stats.snapshot()
            stats.subtract(boundary)
        """
    )
    assert findings == []


def test_spb303_non_stats_snapshot_is_clean():
    # Snapshots of other structures (e.g. the MAC store) are unrelated.
    findings = lint_sim(
        """
        def recover_all(self):
            return list(self.macs.snapshot())
        """
    )
    assert findings == []


# --- SPB401-403: pool safety ---------------------------------------------


def test_spb401_lambda_in_job():
    findings = lint_sim(
        """
        def build():
            return SimSpec(calibration=lambda: None)
        """
    )
    assert codes(findings) == ["SPB401"]


def test_spb402_nested_function_reference():
    findings = lint_sim(
        """
        def sweep(pool, jobs):
            def levels(page):
                return 2
            return pool.submit(levels, jobs)
        """
    )
    assert codes(findings) == ["SPB402"]


def test_spb402_nested_function_called_is_clean():
    findings = lint_sim(
        """
        def sweep():
            def make_spec(cut):
                return SimSpec(bmf_cut=cut)
            return [make_spec(2), make_spec(5)]
        """
    )
    assert findings == []


def test_spb403_open_handle_in_job():
    findings = lint_sim(
        """
        def build(path):
            return SimJob(key=("x",), benchmark="a", num_ops=1, seed=1,
                          warmup_frac=0.0, spec=open(path))
        """
    )
    assert codes(findings) == ["SPB403"]


def test_spb403_generator_in_job():
    findings = lint_sim(
        """
        def build(items):
            return run_jobs((i for i in items), workers=2)
        """
    )
    assert codes(findings) == ["SPB403"]


# --- SPB404: resource lifecycle ownership ---------------------------------


def lint_as(module: str, source: str, **kwargs):
    """Lint a snippet as if it lived in ``module``."""
    return lint_source(
        textwrap.dedent(source), "fixture.py", module=module, **kwargs
    )


def test_spb404_shared_memory_create_outside_plane():
    findings = lint_as(
        "repro.analysis.fixture",
        """
        def stage(trace):
            return SharedMemory(create=True, size=trace.nbytes)
        """,
    )
    assert codes(findings) == ["SPB404"]


def test_spb404_shared_memory_attach_is_clean():
    # Attaching to an existing segment owns nothing; only creation is
    # restricted to the runtime plane.
    findings = lint_as(
        "repro.analysis.fixture",
        """
        def adopt(name):
            return SharedMemory(name=name)
        """,
    )
    assert findings == []


def test_spb404_create_in_plane_with_paired_cleanup_is_clean():
    findings = lint_as(
        "repro.runtime.shm",
        """
        def publish(size):
            segment = SharedMemory(create=True, size=size)
            try:
                fill(segment)
            except BaseException:
                segment.close()
                segment.unlink()
                raise
            return segment
        """,
    )
    assert findings == []


def test_spb404_create_in_plane_without_unlink_fires():
    # close() alone still leaves the named /dev/shm file behind.
    findings = lint_as(
        "repro.runtime.shm",
        """
        def publish(size):
            segment = SharedMemory(create=True, size=size)
            try:
                fill(segment)
            finally:
                segment.close()
            return segment
        """,
    )
    assert codes(findings) == ["SPB404"]


def test_spb404_raw_pool_outside_runtime():
    findings = lint_as(
        "repro.analysis.fixture",
        """
        def sweep(workers):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return pool
        """,
    )
    assert codes(findings) == ["SPB404"]


def test_spb404_multiprocessing_pool_attribute_fires():
    findings = lint_as(
        "repro.fault.fixture",
        """
        import multiprocessing

        def sweep(workers):
            return multiprocessing.Pool(workers)
        """,
    )
    assert codes(findings) == ["SPB404"]


def test_spb404_pool_construction_inside_runtime_is_clean():
    findings = lint_as(
        "repro.runtime.pool",
        """
        def start(workers):
            return ProcessPoolExecutor(max_workers=workers)
        """,
    )
    assert findings == []


# --- SPB501: crash/recovery/fault robustness -------------------------------

FAULT_MODULE = "repro.fault.campaign"


def lint_fault(source: str, **kwargs):
    """Lint a snippet as if it lived inside the fault subsystem."""
    return lint_source(
        textwrap.dedent(source), "fixture.py", module=FAULT_MODULE, **kwargs
    )


def test_spb501_swallowed_exception():
    findings = lint_fault(
        """
        def grade(case):
            try:
                return execute(case)
            except ValueError:
                pass
        """
    )
    assert codes(findings) == ["SPB501"]


def test_spb501_bare_except_pass():
    findings = lint_fault(
        """
        def grade(case):
            try:
                return execute(case)
            except Exception:
                ...
        """
    )
    assert codes(findings) == ["SPB501"]


def test_spb501_handler_that_records_is_clean():
    findings = lint_fault(
        """
        def grade(case, failures):
            try:
                return execute(case)
            except ValueError as exc:
                failures.append(exc)
        """
    )
    assert findings == []


def test_spb501_unseeded_global_random():
    findings = lint_fault(
        """
        import random

        def pick(blocks):
            return random.choice(blocks)
        """
    )
    assert codes(findings) == ["SPB501"]


def test_spb501_unseeded_random_instance():
    findings = lint_fault(
        """
        from random import Random

        def pick():
            return Random()
        """
    )
    assert codes(findings) == ["SPB501"]


def test_spb501_seeded_random_is_clean():
    findings = lint_fault(
        """
        from random import Random

        def pick(case):
            return Random(case.seed)
        """
    )
    assert findings == []


def test_spb501_scoped_to_crash_recovery_fault():
    source = """
    def grade(case):
        try:
            return execute(case)
        except ValueError:
            pass
    """
    assert lint_fault(source)  # in scope
    clean = lint_source(
        textwrap.dedent(source), "fixture.py", module="repro.analysis.runner"
    )
    assert clean == []  # runner code may use its own error discipline
    crash = lint_source(
        textwrap.dedent(source), "fixture.py", module="repro.core.crash"
    )
    assert codes(crash) == ["SPB501"]


# --- SPB504: OS-fault hygiene in durability/runtime ------------------------

DURABILITY_MODULE = "repro.durability.artifacts"


def lint_durability(source: str, module: str = DURABILITY_MODULE, **kwargs):
    """Lint a snippet as if it lived inside the durability layer."""
    return lint_source(
        textwrap.dedent(source), "fixture.py", module=module, **kwargs
    )


def test_spb504_silent_oserror_pass():
    findings = lint_durability(
        """
        def cleanup(path):
            try:
                path.unlink()
            except OSError:
                pass
        """
    )
    assert codes(findings) == ["SPB504"]


def test_spb504_silent_oserror_fallback_return():
    findings = lint_durability(
        """
        def read(path):
            try:
                return path.read_bytes()
            except OSError:
                return None
        """
    )
    assert codes(findings) == ["SPB504"]


def test_spb504_tuple_catch_including_oserror():
    findings = lint_durability(
        """
        def install(sig, handler):
            try:
                register(sig, handler)
            except (ValueError, OSError):
                pass
        """
    )
    assert codes(findings) == ["SPB504"]


def test_spb504_logged_handler_is_clean():
    findings = lint_durability(
        """
        import logging

        logger = logging.getLogger(__name__)

        def cleanup(path):
            try:
                path.unlink()
            except OSError as exc:
                logger.debug("cannot remove %s: %s", path, exc)
        """
    )
    assert findings == []


def test_spb504_reraising_handler_is_clean():
    findings = lint_durability(
        """
        def checkpoint(write, results):
            try:
                write(results)
            except OSError as exc:
                raise RunInterrupted(str(exc), results) from exc
        """
    )
    assert findings == []


def test_spb504_non_os_errors_not_this_rules_business():
    findings = lint_durability(
        """
        def parse(text):
            try:
                return int(text)
            except ValueError:
                return 0
        """
    )
    assert findings == []


def test_spb504_swallow_check_scoped_to_durability_runtime():
    source = """
    def cleanup(path):
        try:
            path.unlink()
        except OSError:
            pass
    """
    assert codes(lint_durability(source, module="repro.runtime.shm")) == [
        "SPB504"
    ]
    # Analysis code may treat a missing file as an ordinary outcome.
    assert lint_durability(source, module="repro.analysis.compare") == []


def test_spb504_raw_os_kill_outside_sanctioned_homes():
    source = """
    import os

    def stop(pid):
        os.kill(pid, 9)
    """
    findings = lint_durability(source, module="repro.analysis.runner")
    assert codes(findings) == ["SPB504"]
    assert "repro.envfault" in findings[0].message


def test_spb504_signal_signal_outside_sanctioned_homes():
    findings = lint_durability(
        """
        import signal

        def install(handler):
            signal.signal(signal.SIGTERM, handler)
        """,
        module="repro.cli",
    )
    assert codes(findings) == ["SPB504"]


def test_spb504_sanctioned_homes_may_use_raw_signals():
    source = """
    import os
    import signal

    def arm(pid, handler):
        signal.signal(signal.SIGTERM, handler)
        os.kill(pid, signal.SIGKILL)
    """
    for module in ("repro.durability.interrupt", "repro.envfault.procfault"):
        assert lint_durability(source, module=module) == []


def test_spb504_does_not_police_non_repro_trees():
    findings = lint_durability(
        """
        import os

        def stop(pid):
            os.kill(pid, 9)
        """,
        module="scripts.helper",
    )
    assert findings == []


# --- suppressions ---------------------------------------------------------


def test_line_suppression_silences_only_that_line():
    findings = lint_sim(
        """
        import time

        def stamp():
            a = time.time()  # secpb-lint: disable=SPB102
            b = time.time()
            return a, b
        """
    )
    assert codes(findings) == ["SPB102"]
    assert findings[0].line == 6


def test_line_suppression_multiple_codes():
    findings = lint_sim(
        """
        import time, os

        def stamp():
            return time.time(), os.getenv("X")  # secpb-lint: disable=SPB102,SPB104
        """
    )
    assert findings == []


def test_file_suppression():
    findings = lint_sim(
        """
        # secpb-lint: disable-file=SPB102
        import time

        def a():
            return time.time()

        def b():
            return time.time()
        """
    )
    assert findings == []


def test_suppression_of_other_code_does_not_silence():
    findings = lint_sim(
        """
        import time

        def stamp():
            return time.time()  # secpb-lint: disable=SPB101
        """
    )
    assert codes(findings) == ["SPB102"]


def test_parse_suppressions_shapes():
    per_line, per_file = parse_suppressions(
        "x = 1  # secpb-lint: disable=SPB101\n"
        "# secpb-lint: disable-file=SPB303\n"
    )
    assert per_line == {1: {"SPB101"}}
    assert per_file == {"SPB303"}


# --- selection and framework ----------------------------------------------


def test_select_rules_filters_by_code():
    rules = select_rules(select=["SPB101", "SPB102"])
    assert [r.code for r in rules] == ["SPB101", "SPB102"]
    rules = select_rules(ignore=["SPB103"])
    assert "SPB103" not in [r.code for r in rules]


def test_selected_rules_limit_findings():
    source = """
    import time

    def f():
        for x in {"a", "b"}:
            time.time()
    """
    all_findings = lint_sim(source)
    assert set(codes(all_findings)) == {"SPB102", "SPB103"}
    only_clock = lint_sim(source, rules=select_rules(select=["SPB102"]))
    assert codes(only_clock) == ["SPB102"]


def test_syntax_error_reported_as_spb001():
    findings = lint_source("def broken(:\n", "broken.py", module=SIM_MODULE)
    assert codes(findings) == ["SPB001"]


def test_module_name_for_path(tmp_path):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    target = pkg / "engine.py"
    target.write_text("x = 1\n")
    assert module_name_for_path(target) == "repro.sim.engine"
    assert module_name_for_path(pkg / "__init__.py") == "repro.sim"


# --- JSON output ----------------------------------------------------------


def test_json_report_schema():
    findings = lint_sim(
        """
        import time

        def f():
            return time.time()
        """
    )
    payload = json.loads(findings_to_json(findings))
    assert payload["version"] == 1
    assert payload["total"] == 1
    assert payload["counts"] == {"SPB102": 1}
    (entry,) = payload["findings"]
    assert set(entry) == {"code", "severity", "path", "line", "col", "message"}
    assert entry["code"] == "SPB102"
    assert entry["severity"] == "error"
    assert entry["path"] == "fixture.py"
    assert isinstance(entry["line"], int) and entry["line"] > 0


def test_json_report_empty():
    payload = json.loads(findings_to_json([]))
    assert payload == {"version": 1, "findings": [], "counts": {}, "total": 0}


def test_findings_sorted_deterministically():
    findings = lint_sim(
        """
        import time, os

        def f():
            b = os.getenv("X")
            a = time.time()
            return a, b
        """
    )
    assert [f.line for f in findings] == sorted(f.line for f in findings)


# --- SPB505: resilience hygiene --------------------------------------------


def lint_runtime_fixture(source: str, **kwargs):
    """Lint a snippet as generic harness code (runner/serve territory)."""
    return lint_source(
        textwrap.dedent(source),
        "fixture.py",
        module="repro.analysis.fixture",
        **kwargs,
    )


def test_spb505_raw_time_sleep():
    findings = lint_runtime_fixture(
        """
        import time

        def backoff():
            time.sleep(0.5)
        """
    )
    assert codes(findings) == ["SPB505"]


def test_spb505_from_import_sleep():
    findings = lint_runtime_fixture(
        """
        from time import sleep

        def backoff():
            sleep(0.5)
        """
    )
    assert codes(findings) == ["SPB505"]


def test_spb505_hand_rolled_retry_loop():
    findings = lint_runtime_fixture(
        """
        def attach(fn):
            while True:
                try:
                    return fn()
                except FileNotFoundError:
                    continue
        """
    )
    assert codes(findings) == ["SPB505"]


def test_spb505_nested_loop_continue_not_flagged():
    # The continue belongs to the inner for-loop, not the retry shape.
    findings = lint_runtime_fixture(
        """
        def harvest(futures):
            while futures:
                try:
                    futures[0].result()
                except ValueError:
                    for f in futures:
                        if f.done():
                            continue
                    futures.pop(0)
        """
    )
    assert codes(findings) == []


def test_spb505_reraising_handler_not_flagged():
    findings = lint_runtime_fixture(
        """
        def pump(queue):
            while True:
                try:
                    queue.get()
                except KeyboardInterrupt:
                    raise
        """
    )
    assert codes(findings) == []


def test_spb505_clock_sleep_sanctioned():
    # Sleeping through the injectable clock is the sanctioned form.
    findings = lint_runtime_fixture(
        """
        from repro.resilience import get_clock

        def backoff():
            get_clock().sleep(0.5)
        """
    )
    assert codes(findings) == []


def test_spb505_exempt_inside_resilience_package():
    findings = lint_source(
        textwrap.dedent(
            """
            import time

            def sleep_for(seconds):
                time.sleep(seconds)
            """
        ),
        "fixture.py",
        module="repro.resilience.clock",
    )
    assert codes(findings) == []


# --- SPB502: artifact I/O must be atomic -----------------------------------


def lint_artifact(source: str, **kwargs):
    """Lint a snippet as if it lived inside the analysis layer."""
    return lint_source(
        textwrap.dedent(source), "fixture.py", module=ANALYSIS_MODULE, **kwargs
    )


def test_spb502_bare_open_write():
    findings = lint_artifact(
        """
        def save(path, text):
            with open(path, "w") as handle:
                handle.write(text)
        """
    )
    assert codes(findings) == ["SPB502"]


def test_spb502_append_and_exclusive_modes_flagged():
    findings = lint_artifact(
        """
        def save(path):
            open(path, "a").close()
            open(path, mode="xb").close()
        """
    )
    assert codes(findings) == ["SPB502", "SPB502"]


def test_spb502_json_dump_to_handle():
    findings = lint_artifact(
        """
        import json

        def save(handle, payload):
            json.dump(payload, handle)
        """
    )
    assert codes(findings) == ["SPB502"]


def test_spb502_path_write_text():
    findings = lint_artifact(
        """
        def save(path, text):
            path.write_text(text)
        """
    )
    assert codes(findings) == ["SPB502"]


def test_spb502_reads_and_dumps_are_clean():
    findings = lint_artifact(
        """
        import json

        def load(path):
            with open(path) as handle:
                return json.load(handle)

        def render(payload):
            return json.dumps(payload, sort_keys=True)
        """
    )
    assert findings == []


def test_spb502_read_mode_literal_is_clean():
    findings = lint_artifact(
        """
        def load(path):
            with open(path, "rb") as handle:
                return handle.read()
        """
    )
    assert findings == []


def test_spb502_atomic_writer_is_clean():
    findings = lint_artifact(
        """
        from repro.durability import write_artifact

        def save(path, text):
            write_artifact(path, text)
        """
    )
    assert findings == []


def test_spb502_out_of_scope_module_is_clean():
    findings = lint_source(
        textwrap.dedent(
            """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """
        ),
        "fixture.py",
        module="repro.workloads.fixture",
    )
    assert codes(findings) == []


def test_spb502_fault_layer_in_scope():
    findings = lint_source(
        textwrap.dedent(
            """
            def save(path, text):
                path.write_bytes(text)
            """
        ),
        "fixture.py",
        module="repro.fault.minimize",
    )
    assert codes(findings) == ["SPB502"]


def test_spb502_suppression():
    findings = lint_artifact(
        """
        def debug_dump(path, text):
            with open(path, "w") as handle:  # secpb-lint: disable=SPB502
                handle.write(text)
        """
    )
    assert findings == []


# --- SPB304: warmup param without subtract --------------------------------


def test_spb304_warmup_param_without_subtract():
    findings = lint_sim(
        """
        def run(traces, warmup_frac=0.0):
            stats = collect(traces)
            return stats.as_dict()
        """
    )
    assert codes(findings) == ["SPB304"]


def test_spb304_clean_with_subtract():
    findings = lint_sim(
        """
        def run(traces, warmup_frac=0.0):
            stats = collect(traces)
            boundary = stats.snapshot()
            stats.subtract(boundary)
            return stats.as_dict()
        """
    )
    assert findings == []


def test_spb304_pass_through_param_is_clean():
    # Forwarding warmup_frac without touching the collector is fine.
    findings = lint_sim(
        """
        def run_scheme(trace, scheme, warmup_frac=0.0):
            return simulator.run(trace, warmup_frac)
        """
    )
    assert findings == []


def test_spb304_out_of_scope_module_is_clean():
    findings = lint_source(
        textwrap.dedent(
            """
            def run(traces, warmup_frac=0.0):
                stats = collect(traces)
                return stats.as_dict()
            """
        ),
        "fixture.py",
        module="repro.cli",
    )
    assert findings == []


# --- SPB601: print() in library scope -------------------------------------


def test_spb601_print_in_library_module():
    findings = lint_source(
        textwrap.dedent(
            """
            def report(result):
                print(result)
            """
        ),
        "fixture.py",
        module="repro.analysis.fixture",
    )
    assert codes(findings) == ["SPB601"]


def test_spb601_cli_modules_may_print():
    for module in ("repro.cli", "repro.lint.cli", "repro.__main__"):
        findings = lint_source(
            textwrap.dedent(
                """
                def report(result):
                    print(result)
                """
            ),
            "fixture.py",
            module=module,
        )
        assert findings == [], module


def test_spb601_non_repro_module_is_clean():
    findings = lint_source(
        "def f():\n    print('hi')\n", "fixture.py", module="scripts.tool"
    )
    assert findings == []


# --- SPB602: ad-hoc logging configuration ---------------------------------


def test_spb602_basicconfig_outside_obs():
    findings = lint_source(
        textwrap.dedent(
            """
            import logging

            def boot():
                logging.basicConfig(level=logging.INFO)
            """
        ),
        "fixture.py",
        module="repro.cli",
    )
    assert codes(findings) == ["SPB602"]


def test_spb602_dictconfig_flagged():
    findings = lint_source(
        textwrap.dedent(
            """
            import logging.config

            def boot(cfg):
                logging.config.dictConfig(cfg)
            """
        ),
        "fixture.py",
        module="repro.fault.fixture",
    )
    assert codes(findings) == ["SPB602"]


def test_spb602_obs_bootstrap_exempt():
    findings = lint_source(
        textwrap.dedent(
            """
            import logging

            def configure():
                logging.basicConfig(level=logging.WARNING)
            """
        ),
        "fixture.py",
        module="repro.obs.bootstrap",
    )
    assert findings == []


def test_spb602_getlogger_is_clean():
    findings = lint_source(
        textwrap.dedent(
            """
            import logging

            logger = logging.getLogger(__name__)
            """
        ),
        "fixture.py",
        module="repro.workloads.store",
    )
    assert findings == []
