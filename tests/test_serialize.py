"""Tests for repro.analysis.serialize — JSON round-trips of results."""

import json

import pytest

from repro.analysis.experiments import run_table5, run_table6
from repro.analysis.serialize import (
    load_result,
    result_to_dict,
    save_result,
    to_jsonable,
)
from repro.core.simulator import run_scheme
from repro.core.schemes import get_scheme
from repro.energy.battery import estimate_scheme
from repro.workloads.synthetic import uniform_trace


class TestToJsonable:
    def test_scalars_pass_through(self):
        assert to_jsonable(3) == 3
        assert to_jsonable(2.5) == 2.5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_bytes_become_hex(self):
        assert to_jsonable(b"\x01\xff") == "01ff"

    def test_containers_recurse(self):
        assert to_jsonable({1: [b"\x00", (2, 3)]}) == {"1": ["00", [2, 3]]}

    def test_dataclass_tagged_with_type(self):
        estimate = estimate_scheme(get_scheme("cm"))
        data = to_jsonable(estimate)
        assert data["__type__"] == "BatteryEstimate"
        assert data["label"] == "cm"


class TestResultTypes:
    def test_simulation_result(self):
        trace = uniform_trace(500, 100, seed=1)
        result = run_scheme(trace, get_scheme("cobcm"))
        data = result_to_dict(result)
        assert data["scheme"] == "cobcm"
        assert data["cycles"] > 0
        json.dumps(data)  # must be JSON-clean

    def test_battery_table(self):
        data = result_to_dict(run_table5())
        assert any(row["label"] == "s_eadr" for row in data["rows"])
        json.dumps(data)

    def test_size_battery_table(self):
        data = result_to_dict(run_table6())
        assert "32" in data["cobcm"]
        json.dumps(data)

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            result_to_dict(42)


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "table5.json")
        save_result(run_table5(), path)
        loaded = load_result(path)
        assert loaded["__type__"] == "BatteryTable"
        labels = {row["label"] for row in loaded["rows"]}
        assert {"cobcm", "bbb", "eadr"} <= labels


class TestArtifactDiscipline:
    """ISSUE 5: results land atomically with verifiable manifests."""

    def _result(self):
        trace = uniform_trace(500, 100, seed=1)
        return run_scheme(trace, get_scheme("cobcm"))

    def test_save_result_writes_manifest(self, tmp_path):
        from repro.durability import ArtifactStatus, verify_artifact

        path = tmp_path / "result.json"
        save_result(self._result(), str(path))
        assert (tmp_path / "result.json.sha256").is_file()
        assert verify_artifact(path) is ArtifactStatus.OK

    def test_load_result_rejects_truncation(self, tmp_path):
        from repro.durability import ArtifactError

        path = tmp_path / "result.json"
        save_result(self._result(), str(path))
        with open(path, "r+b") as handle:
            handle.truncate(10)
        with pytest.raises(ArtifactError, match="mismatch"):
            load_result(str(path))

    def test_load_result_accepts_unmanifested_files(self, tmp_path):
        # Hand-written or pre-ISSUE-5 files have no sidecar; they load
        # as before (no verification possible, no false rejection).
        path = tmp_path / "legacy.json"
        path.write_text('{"x": 1}\n')
        assert load_result(str(path)) == {"x": 1}

    def test_simulation_result_payload_roundtrip(self):
        from repro.analysis.serialize import (
            simulation_result_from_payload,
            simulation_result_to_payload,
        )

        result = self._result()
        payload = simulation_result_to_payload(result)
        json.dumps(payload)  # journal lines must be JSON-clean
        assert simulation_result_from_payload(payload) == result

    def test_unknown_payload_kind_rejected(self):
        from repro.analysis.serialize import simulation_result_from_payload

        with pytest.raises(ValueError, match="payload kind"):
            simulation_result_from_payload({"kind": "what", "data": {}})
