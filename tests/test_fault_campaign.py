"""Fault-injection campaign subsystem (repro.fault).

Acceptance anchors:

* the seeded default campaign builds >= 200 cases spanning all six
  schemes x {whole-system, per-ASID} crashes x both drain policies plus
  gapped baselines, brownouts, and all five tamper targets — and grades
  100% correct verdicts;
* tamper is not just detected but *attributed* (MAC vs counter vs BMT)
  over exactly the expected blast radius;
* brownout crashes surface PARTIAL (never an unhandled exception, never
  a false "recoverable");
* a failing case shrinks to a minimal reproducer that round-trips
  through JSON and replays deterministically.
"""

import json
from collections import Counter

import pytest

from repro.core.schemes import SPECTRUM_ORDER
from repro.fault import (
    CampaignSpec,
    CaseResult,
    FaultCase,
    TamperSpec,
    build_cases,
    case_from_dict,
    case_to_dict,
    execute_case,
    generate_workload,
    load_reproducer,
    minimize_case,
    replay_reproducer,
    run_campaign,
    save_reproducer,
)
from repro.fault.campaign import GAPPED_SCHEME


def _case(**overrides):
    defaults = dict(
        case_id="t/case",
        scheme="cobcm",
        crash_kind="system",
        seed=7,
        num_stores=40,
        crash_index=20,
        working_set=24,
        num_asids=3,
    )
    defaults.update(overrides)
    return FaultCase(**defaults)


class TestCaseValidation:
    def test_unknown_crash_kind_rejected(self):
        with pytest.raises(ValueError, match="crash kind"):
            _case(crash_kind="meteor")

    def test_crash_index_bounds(self):
        with pytest.raises(ValueError, match="crash_index"):
            _case(crash_index=0)
        with pytest.raises(ValueError, match="crash_index"):
            _case(crash_index=41)

    def test_unknown_tamper_target_rejected(self):
        with pytest.raises(ValueError, match="tamper target"):
            TamperSpec(target="voodoo")

    def test_brownout_and_tamper_mutually_exclusive(self):
        with pytest.raises(ValueError, match="at most one fault"):
            _case(brownout_frac=0.5, tamper=TamperSpec(target="mac"))

    def test_brownout_frac_range(self):
        with pytest.raises(ValueError, match="brownout_frac"):
            _case(brownout_frac=1.0)


class TestWorkloadGenerator:
    def test_deterministic_in_seed(self):
        assert generate_workload(_case()) == generate_workload(_case())

    def test_different_seed_different_stream(self):
        assert generate_workload(_case()) != generate_workload(_case(seed=8))

    def test_shape(self):
        case = _case()
        stores = generate_workload(case)
        assert len(stores) == case.num_stores
        addrs = {addr for addr, _p, _a in stores}
        assert len(addrs) <= case.working_set
        for addr, payload, asid in stores:
            assert len(payload) == 64
            assert asid == addr % case.num_asids


class TestDefaultCampaign:
    def test_default_spec_spans_the_required_matrix(self):
        cases = build_cases(CampaignSpec())
        assert len(cases) >= 200
        schemes = {c.scheme for c in cases}
        assert schemes == set(SPECTRUM_ORDER) | {GAPPED_SCHEME}
        kinds = Counter(c.crash_kind for c in cases)
        assert kinds["system"] and kinds["app"] and kinds["gapped"]
        policies = {c.policy for c in cases if c.crash_kind == "app"}
        assert policies == {"drain-all", "drain-process"}
        targets = {c.tamper.target for c in cases if c.tamper}
        assert targets == {"ciphertext", "counter", "mac", "bmt", "swap"}
        assert any(c.brownout_frac is not None for c in cases)
        assert any(c.tamper and c.tamper.prefer_late for c in cases)

    def test_case_list_is_deterministic(self):
        assert build_cases(CampaignSpec()) == build_cases(CampaignSpec())
        assert build_cases(CampaignSpec(seed=1)) != build_cases(
            CampaignSpec(seed=2)
        )

    def test_case_ids_unique(self):
        cases = build_cases(CampaignSpec())
        assert len({c.case_id for c in cases}) == len(cases)

    def test_default_campaign_all_verdicts_correct(self):
        """The headline acceptance: 200 cases, 100% correct verdicts."""
        report = run_campaign(jobs=1, minimize=False)
        assert report.total >= 200
        assert report.all_passed, report.render()
        assert not report.job_failures

    @pytest.mark.quick
    def test_small_campaign_parallel_identical_to_serial(self):
        spec = CampaignSpec(
            schemes=("cobcm", "nogap"), crash_points=2,
            gapped_points=3, num_stores=30,
        )
        serial = run_campaign(spec, jobs=1, minimize=False)
        parallel = run_campaign(spec, jobs=4, minimize=False)
        assert serial.results == parallel.results
        assert serial.all_passed, serial.render()


class TestTamperAttribution:
    @pytest.mark.parametrize(
        "target,status",
        [
            ("ciphertext", "mac-failure"),
            ("mac", "mac-failure"),
            ("swap", "mac-failure"),
            ("counter", "counter-integrity-failure"),
            ("bmt", "bmt-integrity-failure"),
        ],
    )
    def test_each_target_detected_and_attributed(self, target, status):
        result = execute_case(
            _case(tamper=TamperSpec(target=target, bit=5))
        )
        assert result.passed, result.observed
        assert result.expected == f"detect:{status}"

    @pytest.mark.parametrize("name", SPECTRUM_ORDER)
    def test_late_artifact_tamper_detected_all_schemes(self, name):
        """Flips that hit blocks the battery itself just wrote (the
        sec-sync's late-step artifacts) must still be detected."""
        result = execute_case(
            _case(
                scheme=name,
                tamper=TamperSpec(target="ciphertext", bit=3, prefer_late=True),
            )
        )
        assert result.passed, result.observed


class TestBrownoutCases:
    @pytest.mark.parametrize("frac", [0.0, 0.3, 0.6])
    def test_insufficient_budget_grades_partial(self, frac):
        result = execute_case(_case(brownout_frac=frac, crash_index=40))
        assert result.passed, result.observed
        assert result.expected == "partial"
        assert result.observed == "partial"


class TestGappedCases:
    def test_gap_always_detected(self):
        result = execute_case(
            _case(scheme=GAPPED_SCHEME, crash_kind="gapped")
        )
        assert result.passed
        assert result.observed == "gap-detected"


class TestJobFailureCapture:
    def test_raising_case_becomes_job_failure(self, monkeypatch):
        import repro.fault.campaign as campaign_mod

        real = campaign_mod.execute_case

        def poisoned(case):
            if case.case_id.endswith("tamper-mac"):
                raise OSError("worker exploded")
            return real(case)

        monkeypatch.setattr(campaign_mod, "execute_case", poisoned)
        spec = CampaignSpec(
            schemes=("cobcm",), crash_points=1, gapped_points=1, num_stores=20
        )
        report = run_campaign(spec, jobs=1, minimize=False)
        assert len(report.job_failures) == 1
        failure = report.job_failures[0]
        assert failure.error_type == "OSError"
        assert failure.attempts == 2  # one retry granted
        assert not report.all_passed
        # Every other case still ran and graded.
        assert report.total == len(build_cases(spec))


class TestMinimization:
    def _failing_execute(self, threshold=4):
        def fake(case):
            failing = (
                case.crash_index >= threshold and case.num_stores >= threshold
            )
            return CaseResult(
                case_id=case.case_id,
                scheme=case.scheme,
                crash_kind=case.crash_kind,
                passed=not failing,
                expected="synthetic",
                observed="boom" if failing else "synthetic",
            )

        return fake

    def test_shrinks_while_failure_reproduces(self, monkeypatch):
        import repro.fault.campaign as campaign_mod

        monkeypatch.setattr(
            campaign_mod, "execute_case", self._failing_execute()
        )
        case = _case(num_stores=60, crash_index=32, working_set=24)
        minimal, result = minimize_case(case)
        assert not result.passed
        assert result.expected == "synthetic"
        assert minimal.crash_index == 4  # 32 -> 16 -> 8 -> 4; 2 passes
        assert minimal.num_stores <= case.num_stores
        assert minimal.num_asids == 1
        assert minimal.working_set < case.working_set

    def test_passing_case_returned_unchanged(self):
        case = _case()
        minimal, result = minimize_case(case)
        assert minimal == case
        assert result.passed

    def test_raising_candidate_folds_into_failed_grade(self, monkeypatch):
        import repro.fault.campaign as campaign_mod

        def explode(case):
            raise ZeroDivisionError("broken executor")

        monkeypatch.setattr(campaign_mod, "execute_case", explode)
        minimal, result = minimize_case(_case())
        assert not result.passed
        assert result.observed.startswith("error: ZeroDivisionError")


class TestReproducerRoundTrip:
    def test_json_round_trip_exact(self):
        case = _case(tamper=TamperSpec(target="bmt", bit=9, prefer_late=True))
        assert case_from_dict(case_to_dict(case)) == case
        assert case_from_dict(
            json.loads(json.dumps(case_to_dict(case)))
        ) == case

    def test_unknown_version_rejected(self):
        payload = case_to_dict(_case())
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            case_from_dict(payload)

    def test_save_load_replay(self, tmp_path):
        case = _case(tamper=TamperSpec(target="counter", bit=2))
        path = save_reproducer(case, tmp_path / "repro.json")
        assert load_reproducer(path) == case
        replayed = replay_reproducer(path)
        direct = execute_case(case)
        assert replayed == direct
        assert replayed.passed

    def test_campaign_emits_reproducer_for_failures(self, monkeypatch):
        import repro.fault.campaign as campaign_mod

        real = campaign_mod.execute_case

        def grade_one_wrong(case):
            result = real(case)
            if case.case_id.endswith("brownout-0.5"):
                return CaseResult(
                    case_id=result.case_id,
                    scheme=result.scheme,
                    crash_kind=result.crash_kind,
                    passed=False,
                    expected=result.expected,
                    observed="forced-failure",
                )
            return result

        monkeypatch.setattr(campaign_mod, "execute_case", grade_one_wrong)
        spec = CampaignSpec(
            schemes=("cobcm",), crash_points=1, gapped_points=1, num_stores=20
        )
        report = run_campaign(spec, jobs=1, minimize=True)
        assert len(report.failures) == 1
        assert len(report.reproducers) == 1
        repro = report.reproducers[0]
        assert repro.case_id.endswith("brownout-0.5")
        rebuilt = case_from_dict(json.loads(repro.json))
        assert rebuilt.scheme == "cobcm"
        # The reproducer itself is in the JSON report.
        assert json.loads(report.to_json())["reproducers"]


class TestCampaignReport:
    def test_render_mentions_every_scheme(self):
        spec = CampaignSpec(
            schemes=("cobcm", "m"), crash_points=1, gapped_points=1,
            num_stores=20,
        )
        report = run_campaign(spec, jobs=1, minimize=False)
        rendered = report.render()
        assert "cobcm" in rendered and "gapped" in rendered
        assert "0 failed" in rendered

    def test_json_report_parses(self):
        spec = CampaignSpec(
            schemes=("nogap",), crash_points=1, gapped_points=1, num_stores=20
        )
        report = run_campaign(spec, jobs=1, minimize=False)
        payload = json.loads(report.to_json())
        assert payload["total"] == report.total
        assert payload["failed"] == []


class TestReplayVerdicts:
    """ISSUE 5 satellite: reproducers embed the recorded verdict so a
    replay can detect divergence (code changed -> verdict changed)."""

    def _case(self):
        return _case(num_stores=20, crash_index=10)

    def test_reproducer_v2_embeds_recorded_result(self, tmp_path):
        import dataclasses

        from repro.fault.campaign import execute_case as run_one
        from repro.fault.minimize import (
            REPRODUCER_VERSION,
            load_recorded_result,
        )

        case = self._case()
        result = run_one(case)
        path = save_reproducer(case, tmp_path / "r.json", result=result)
        payload = json.loads(path.read_text())
        assert payload["version"] == REPRODUCER_VERSION == 2
        assert payload["recorded_result"] == dataclasses.asdict(result)
        assert load_recorded_result(path) == result
        # The case itself still round-trips (verdict is metadata).
        assert load_reproducer(path) == case

    def test_reproducer_lands_with_manifest(self, tmp_path):
        from repro.durability import ArtifactStatus, verify_artifact

        path = save_reproducer(self._case(), tmp_path / "r.json")
        assert verify_artifact(path) is ArtifactStatus.OK

    def test_replay_with_verdict_agreement(self, tmp_path):
        from repro.fault.campaign import execute_case as run_one
        from repro.fault.minimize import replay_with_verdict

        case = self._case()
        path = save_reproducer(case, tmp_path / "r.json", result=run_one(case))
        outcome = replay_with_verdict(path)
        assert not outcome.diverged
        assert outcome.diff() == ""

    def test_replay_with_verdict_divergence_and_diff(self, tmp_path):
        import dataclasses

        from repro.fault.campaign import execute_case as run_one
        from repro.fault.minimize import replay_with_verdict

        case = self._case()
        stale = dataclasses.replace(
            run_one(case), observed="old-verdict", passed=False
        )
        path = save_reproducer(case, tmp_path / "r.json", result=stale)
        outcome = replay_with_verdict(path)
        assert outcome.diverged
        diff = outcome.diff()
        assert "--- recorded verdict" in diff
        assert "+++ replayed verdict" in diff
        assert "old-verdict" in diff

    def test_version1_reproducer_loads_without_verdict(self, tmp_path):
        from repro.fault.minimize import (
            load_recorded_result,
            replay_with_verdict,
        )

        payload = case_to_dict(self._case())
        payload["version"] = 1
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(payload))
        assert load_reproducer(path) == self._case()
        assert load_recorded_result(path) is None
        # A v1 file can never diverge - only pass/fail.
        assert not replay_with_verdict(path).diverged

    def test_future_version_rejected(self, tmp_path):
        payload = case_to_dict(self._case())
        payload["version"] = 99
        path = tmp_path / "v99.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported reproducer"):
            load_reproducer(path)

    def test_campaign_reproducers_carry_verdicts(self, tmp_path, monkeypatch):
        import dataclasses

        from repro.fault import campaign as campaign_mod
        from repro.fault.minimize import load_recorded_result

        real_execute = campaign_mod.execute_case

        def grade_one_wrong(case):
            result = real_execute(case)
            if "brownout-0.5" in case.case_id:
                result = dataclasses.replace(
                    result, passed=False, observed="forced-failure"
                )
            return result

        monkeypatch.setattr(campaign_mod, "execute_case", grade_one_wrong)
        spec = CampaignSpec(
            schemes=("cobcm",), crash_points=1, gapped_points=1,
            num_stores=20,
        )
        report = run_campaign(spec, jobs=1, minimize=True)
        assert report.reproducers
        repro = report.reproducers[0]
        path = save_reproducer(
            repro.minimized, tmp_path / "r.json", result=repro.result
        )
        recorded = load_recorded_result(path)
        assert recorded is not None
        assert recorded.observed == "forced-failure"
