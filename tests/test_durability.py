"""Unit tests for repro.durability — the crash-safe harness layer.

The package applies the paper's own write-ahead / atomic-update
discipline to the harness: artifacts land atomically with SHA-256
sidecar manifests, journals are valid prefixes under any kill, stale
journals are rejected by fingerprint, and interruption is a cooperative
checkpoint (exit 75) rather than data loss.
"""

import json
import os
import signal

import pytest

from repro.durability import (
    EXIT_RESUMABLE,
    ArtifactError,
    ArtifactStatus,
    DeadlineToken,
    JournalError,
    JournalWriter,
    RunInterrupted,
    StaleJournalError,
    StopToken,
    atomic_write_text,
    decode_key,
    encode_key,
    fingerprint,
    graceful_shutdown,
    manifest_path,
    open_journal,
    partition_tasks,
    quarantine_artifact,
    read_journal,
    read_verified,
    verify_artifact,
    write_artifact,
)


class TestAtomicWrites:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrite_replaces_whole_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "a much longer first version\n")
        atomic_write_text(path, "v2\n")
        assert path.read_text() == "v2\n"

    def test_no_temp_file_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "data")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestArtifacts:
    def test_write_artifact_creates_manifest(self, tmp_path):
        path = tmp_path / "report.json"
        write_artifact(path, '{"x": 1}\n')
        sidecar = manifest_path(path)
        assert sidecar.name == "report.json.sha256"
        manifest = json.loads(sidecar.read_text())
        assert manifest["algorithm"] == "sha256"
        assert manifest["size"] == len(b'{"x": 1}\n')

    def test_verify_ok(self, tmp_path):
        path = tmp_path / "report.json"
        write_artifact(path, "payload")
        assert verify_artifact(path) is ArtifactStatus.OK

    def test_verify_missing(self, tmp_path):
        assert verify_artifact(tmp_path / "never.json") is ArtifactStatus.MISSING

    def test_verify_unmanifested(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text("{}")
        assert verify_artifact(path) is ArtifactStatus.UNMANIFESTED

    def test_verify_truncation(self, tmp_path):
        path = tmp_path / "report.json"
        write_artifact(path, "a complete artifact body")
        with open(path, "r+b") as handle:
            handle.truncate(5)
        assert verify_artifact(path) is ArtifactStatus.MISMATCH

    def test_verify_bit_flip(self, tmp_path):
        path = tmp_path / "report.json"
        write_artifact(path, "a complete artifact body")
        raw = bytearray(path.read_bytes())
        raw[3] ^= 0x40
        path.write_bytes(bytes(raw))
        assert verify_artifact(path) is ArtifactStatus.MISMATCH

    def test_verify_corrupt_manifest(self, tmp_path):
        path = tmp_path / "report.json"
        write_artifact(path, "body")
        manifest_path(path).write_text("not json at all")
        assert verify_artifact(path) is ArtifactStatus.MISMATCH

    def test_read_verified_roundtrip(self, tmp_path):
        path = tmp_path / "report.json"
        write_artifact(path, b"\x00\x01binary ok")
        assert read_verified(path) == b"\x00\x01binary ok"

    def test_read_verified_rejects_truncation(self, tmp_path):
        path = tmp_path / "report.json"
        write_artifact(path, "full body")
        with open(path, "r+b") as handle:
            handle.truncate(2)
        with pytest.raises(ArtifactError) as excinfo:
            read_verified(path)
        assert excinfo.value.status is ArtifactStatus.MISMATCH

    def test_quarantine_frees_path_keeps_evidence(self, tmp_path):
        path = tmp_path / "report.json"
        write_artifact(path, "suspect bytes")
        moved = quarantine_artifact(path)
        assert not path.exists()
        assert not manifest_path(path).exists()
        assert moved.name == "report.json.quarantined"
        assert moved.read_text() == "suspect bytes"
        assert (tmp_path / "report.json.sha256.quarantined").is_file()


class TestFingerprint:
    def test_stable_across_key_order(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_key_roundtrip(self):
        key = ("table4", "gamess", 32, ("nested", 1))
        assert decode_key(encode_key(key)) == key
        json.dumps(encode_key(key))  # must be JSON-clean

    def test_scalar_keys_pass_through(self):
        assert encode_key("plain") == "plain"
        assert decode_key("plain") == "plain"


class TestJournal:
    SPEC = {"experiment": "t", "num_ops": 100}

    def _write(self, path, entries):
        with JournalWriter.create(path, "test", self.SPEC) as writer:
            for key, payload in entries:
                writer.append(key, payload)

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [(("a", 1), {"v": 1}), (("b", 2), {"v": 2})])
        journal = read_journal(path)
        assert journal.kind == "test"
        assert journal.spec == self.SPEC
        assert journal.entries == {("a", 1): {"v": 1}, ("b", 2): {"v": 2}}
        assert not journal.dropped_tail

    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [(("a",), {"v": 1})])
        with open(path, "a") as handle:
            handle.write('{"key": ["b"], "payl')  # no newline: crash tail
        journal = read_journal(path)
        assert journal.entries == {("a",): {"v": 1}}
        assert journal.dropped_tail

    def test_mid_file_corruption_is_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [(("a",), {"v": 1}), (("b",), {"v": 2})])
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # corrupt a non-tail entry
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt entry at line 2"):
            read_journal(path)

    def test_mid_file_corruption_is_stale_not_plain(self, tmp_path):
        # A corrupt record *followed by* valid records is mid-file damage:
        # truncating there would silently drop the later records, so the
        # reader must refuse with the stale (non-resumable) subclass.
        path = tmp_path / "j.jsonl"
        self._write(path, [(("a",), {"v": 1}), (("b",), {"v": 2})])
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StaleJournalError, match="followed by later"):
            read_journal(path)

    def test_corrupt_final_record_is_plain_journal_error(self, tmp_path):
        # Damage on the *last* complete line has nothing after it to
        # lose — that is an ordinary corrupt entry, not staleness.
        path = tmp_path / "j.jsonl"
        self._write(path, [(("a",), {"v": 1}), (("b",), {"v": 2})])
        lines = path.read_text().splitlines()
        lines[2] = lines[2][:10]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError) as excinfo:
            read_journal(path)
        assert not isinstance(excinfo.value, StaleJournalError)
        assert "corrupt entry at line 3" in str(excinfo.value)

    def test_blank_line_mid_file_is_stale(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [(("a",), {"v": 1}), (("b",), {"v": 2})])
        lines = path.read_text().splitlines()
        lines[1] = ""  # zeroed-out record followed by a valid one
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StaleJournalError, match="blank line 2"):
            read_journal(path)

    def test_trailing_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [(("a",), {"v": 1})])
        with open(path, "a") as handle:
            handle.write("\n\n")
        journal = read_journal(path)
        assert journal.entries == {("a",): {"v": 1}}

    def test_missing_file(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            read_journal(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("")
        with pytest.raises(JournalError, match="empty"):
            read_journal(path)

    def test_edited_header_fingerprint_detected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [])
        header = json.loads(path.read_text().splitlines()[0])
        header["spec"]["num_ops"] = 999  # edit spec, keep old fingerprint
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(JournalError, match="does not match"):
            read_journal(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [])
        header = json.loads(path.read_text().splitlines()[0])
        header["journal_version"] = 99
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(JournalError, match="version"):
            read_journal(path)

    def test_append_to_continues(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [(("a",), {"v": 1})])
        with JournalWriter.append_to(path) as writer:
            writer.append(("b",), {"v": 2})
        assert len(read_journal(path).entries) == 2

    def test_append_to_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [(("a",), {"v": 1})])
        with open(path, "a") as handle:
            handle.write('{"torn')
        with JournalWriter.append_to(path) as writer:
            writer.append(("b",), {"v": 2})
        journal = read_journal(path)
        assert journal.entries == {("a",): {"v": 1}, ("b",): {"v": 2}}
        assert not journal.dropped_tail

    def test_append_after_close_rejected(self, tmp_path):
        writer = JournalWriter.create(tmp_path / "j.jsonl", "test", self.SPEC)
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(JournalError, match="closed"):
            writer.append(("a",), {})

    def test_last_write_wins_on_duplicate_key(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [(("a",), {"v": 1}), (("a",), {"v": 2})])
        assert read_journal(path).entries == {("a",): {"v": 2}}


class TestOpenJournal:
    SPEC = {"campaign": "x", "seed": 7}

    def test_fresh_journal_created(self, tmp_path):
        path = tmp_path / "j.jsonl"
        writer, completed = open_journal(path, "k", self.SPEC)
        writer.close()
        assert completed == {}
        assert read_journal(path).fingerprint == fingerprint(self.SPEC)

    def test_resume_returns_completed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JournalWriter.create(path, "k", self.SPEC) as writer:
            writer.append(("a",), {"v": 1})
        writer, completed = open_journal(path, "k", self.SPEC)
        writer.close()
        assert completed == {("a",): {"v": 1}}

    def test_wrong_kind_is_stale(self, tmp_path):
        path = tmp_path / "j.jsonl"
        JournalWriter.create(path, "campaign", self.SPEC).close()
        with pytest.raises(StaleJournalError, match="'campaign'"):
            open_journal(path, "experiment", self.SPEC)

    def test_different_spec_is_stale(self, tmp_path):
        path = tmp_path / "j.jsonl"
        JournalWriter.create(path, "k", self.SPEC).close()
        with pytest.raises(StaleJournalError, match="different spec"):
            open_journal(path, "k", {"campaign": "x", "seed": 8})

    def test_partition_preserves_order(self):
        done, remaining = partition_tasks(
            ["a", "b", "c", "d"], {"b": 1, "d": 2}
        )
        assert done == ["b", "d"]
        assert remaining == ["a", "c"]


class TestInterrupt:
    def test_exit_code_is_ex_tempfail(self):
        assert EXIT_RESUMABLE == 75

    def test_stop_token_latches_first_reason(self):
        token = StopToken()
        assert not token.check()
        token.trip("first")
        token.trip("second")
        assert token.triggered
        assert token.reason == "first"

    def test_deadline_token_trips_after_budget(self):
        token = DeadlineToken(0.0)
        assert token.check()
        assert "deadline" in token.reason

    def test_deadline_token_not_yet(self):
        token = DeadlineToken(3600.0)
        assert not token.check()

    def test_run_interrupted_carries_completed(self):
        exc = RunInterrupted("why", {("a",): 1})
        assert exc.reason == "why"
        assert exc.completed == {("a",): 1}

    def test_graceful_shutdown_routes_sigterm(self):
        token = StopToken()
        with graceful_shutdown(token):
            os.kill(os.getpid(), signal.SIGTERM)
            assert token.triggered
            assert token.reason == "received SIGTERM"

    def test_graceful_shutdown_restores_handlers(self):
        before = signal.getsignal(signal.SIGTERM)
        with graceful_shutdown(StopToken()):
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before
