"""Tests for the Sec. IV-A coalescing-optimization ablation flag."""

from repro.core.controller import SecPBController
from repro.core.schemes import get_scheme
from repro.core.secpb import SecPBEntry
from repro.core.simulator import SecurePersistencySimulator
from repro.security.metadata_cache import MetadataCaches
from repro.sim.config import SystemConfig
from repro.workloads.synthetic import zipf_trace


def controller(coalescing: bool):
    config = SystemConfig()
    return SecPBController(
        config,
        get_scheme("cm"),
        MetadataCaches(config),
        value_independent_coalescing=coalescing,
    )


class TestControllerFlag:
    def test_default_coalesced_store_is_free_under_cm(self):
        ctl = controller(coalescing=True)
        timing = ctl.price_coalesced_store(0.0, SecPBEntry(0))
        assert timing.unblock_cycles == 0.0

    def test_disabled_coalescing_reruns_bmt_per_store(self):
        ctl = controller(coalescing=False)
        ctl.mdc.access_counter(0)  # warm
        timing = ctl.price_coalesced_store(0.0, SecPBEntry(0))
        assert timing.unblock_cycles >= 320
        assert ctl.stats.get("bmt.root_updates") == 1

    def test_disabled_coalescing_counts_every_store(self):
        ctl = controller(coalescing=False)
        ctl.mdc.access_counter(0)
        for _ in range(5):
            ctl.price_coalesced_store(0.0, SecPBEntry(0))
        assert ctl.stats.get("bmt.root_updates") == 5


class TestEndToEnd:
    def test_optimization_speeds_up_eager_schemes(self):
        """The paper's claim: without once-per-residency coalescing the
        eager schemes pay the BMT root update on every store."""
        trace = zipf_trace(
            num_ops=3000,
            working_set_blocks=300,
            zipf_alpha=0.8,
            store_fraction=0.8,
            burst_length=8,
            mean_gap=1.0,
            seed=13,
            name="coalesce-heavy",
        )
        with_opt = SecurePersistencySimulator(
            scheme=get_scheme("cm"), value_independent_coalescing=True
        ).run(trace)
        without_opt = SecurePersistencySimulator(
            scheme=get_scheme("cm"), value_independent_coalescing=False
        ).run(trace)
        assert without_opt.cycles > 1.5 * with_opt.cycles
        assert without_opt.stats["bmt.root_updates"] > 4 * with_opt.stats[
            "bmt.root_updates"
        ]

    def test_flag_does_not_affect_cobcm(self):
        """COBCM has no eager steps: the flag must be a no-op."""
        trace = zipf_trace(2000, 300, store_fraction=0.7, seed=13)
        a = SecurePersistencySimulator(
            scheme=get_scheme("cobcm"), value_independent_coalescing=True
        ).run(trace)
        b = SecurePersistencySimulator(
            scheme=get_scheme("cobcm"), value_independent_coalescing=False
        ).run(trace)
        assert a.cycles == b.cycles
