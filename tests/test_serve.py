"""Serving frontend: overload partitions, byte-identity, breakers, drain.

Acceptance anchors (ISSUE 10):

* a seeded burst of >= 100 mixed requests against an undersized queue
  partitions into accepted/shed **deterministically** — the partition is
  a pure function of arrival order and capacity, identical across runs;
* every accepted request's results are **byte-identical** to running the
  same jobs directly through :func:`repro.analysis.runner.run_jobs` —
  the server adds supervision, never nondeterminism;
* repeated pool crashes (injected ``worker_sigkill`` storms) trip the
  per-scheme breaker open, subsequent requests shed with a typed
  ``breaker_open``, and after the cooldown a half-open probe success
  closes it again — all driven by a :class:`ManualClock`, no real waits;
* a drain journals the queued remainder and :func:`execute_drained`
  replays it byte-identically.

The socket transport rides the same :class:`ServerCore`; the
end-to-end SIGTERM path is covered by the subprocess test in
``tests/test_resume.py`` and by ``tools/serve_smoke.sh``.
"""

import json

import pytest

from repro.analysis.runner import run_jobs
from repro.envfault import FaultPlan, FaultSpec, injected
from repro.obs import MetricsRegistry
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerPolicy,
    ManualClock,
    REJECT_BREAKER_OPEN,
    REJECT_DEADLINE,
    REJECT_DRAINING,
    REJECT_QUEUE_FULL,
    Rejected,
    RetryPolicy,
)
from repro.runtime.pool import shutdown_shared_pool
from repro.serve import (
    ControlRequest,
    InProcessClient,
    ProtocolError,
    ServeConfig,
    ServerCore,
    SimRequest,
    build_jobs,
    execute_drained,
    parse_request,
    read_drained_requests,
    request_to_payload,
    results_payload,
    seeded_burst,
)
from repro.serve.protocol import (
    error_response,
    journaled_response,
    ok_response,
    shed_response,
)


def _reference_results(request: SimRequest, workers: int) -> dict:
    """What the live server must produce for ``request``, bit for bit."""
    jobs = build_jobs(request)
    results = run_jobs(
        jobs,
        workers=workers if len(jobs) > 1 else 1,
        on_error="raise",
        retries=0,
    )
    return results_payload(jobs, results)


def _canon(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


# --- protocol ----------------------------------------------------------------


class TestProtocol:
    def test_request_payload_round_trip(self):
        request = SimRequest(
            id="r1",
            benchmarks=("mcf", "lbm"),
            scheme="cobcm",
            num_ops=500,
            seed=3,
            warmup=0.25,
            deadline_s=12.0,
        )
        assert parse_request(request_to_payload(request)) == request

    def test_defaults_round_trip_without_optionals(self):
        request = SimRequest(id="r2", benchmarks=("mcf",))
        payload = request_to_payload(request)
        assert "scheme" not in payload and "deadline_s" not in payload
        assert parse_request(payload) == request

    def test_string_benchmarks_wrapped(self):
        request = parse_request({"id": "r3", "benchmarks": "mcf"})
        assert request.benchmarks == ("mcf",)

    def test_control_requests_parse(self):
        request = parse_request({"kind": "stats", "id": "c1"})
        assert isinstance(request, ControlRequest)
        assert request.op == "stats"

    def test_validation_errors(self):
        with pytest.raises(ProtocolError, match="non-empty string 'id'"):
            parse_request({"benchmarks": ["mcf"]})
        with pytest.raises(ProtocolError, match="unknown request kind"):
            parse_request({"id": "r", "kind": "mystery"})
        with pytest.raises(ProtocolError, match="no benchmarks"):
            SimRequest(id="r", benchmarks=())
        with pytest.raises(ProtocolError, match="deadline_s"):
            SimRequest(id="r", benchmarks=("mcf",), deadline_s=0.0)
        with pytest.raises(ProtocolError, match="unknown control op"):
            ControlRequest(id="c", op="reboot")

    def test_response_shapes_carry_version_and_id(self):
        for response in (
            ok_response("r", {}),
            shed_response("r", "queue_full", "full"),
            error_response("r", "RuntimeError", "boom"),
            journaled_response("r", "drain.jsonl"),
        ):
            assert response["v"] == 1
            assert response["id"] == "r"

    def test_seeded_burst_is_deterministic(self):
        first = seeded_burst(2023, 120, num_ops=300)
        second = seeded_burst(2023, 120, num_ops=300)
        assert first == second
        assert len(first) == 120
        assert [r.id for r in first[:3]] == ["r0000", "r0001", "r0002"]
        # A mixed burst: both serial requests and warm-pool sweeps.
        widths = {len(r.benchmarks) for r in first}
        assert 1 in widths and widths - {1}
        assert {r.scheme for r in first} > {None}

    def test_seeded_burst_seed_changes_the_mix(self):
        assert seeded_burst(1, 50) != seeded_burst(2, 50)


# --- overload: deterministic accept/shed partition ---------------------------


BURST_SEED = 2023
BURST_COUNT = 120
QUEUE_DEPTH = 8


def _offer_burst(core: ServerCore):
    """Offer the seeded burst; returns (client, accepted ids, shed map)."""
    client = InProcessClient(core)
    accepted, shed = [], {}
    for request in seeded_burst(BURST_SEED, BURST_COUNT, num_ops=250):
        rejected = client.send(request)
        if rejected is None:
            accepted.append(request.id)
        else:
            shed[request.id] = rejected
    return client, accepted, shed


class TestOverloadPartition:
    def test_partition_is_deterministic_and_typed(self):
        partitions = []
        for _ in range(2):
            # No dispatcher: pure admission against a full-size burst.
            core = ServerCore(ServeConfig(queue_depth=QUEUE_DEPTH))
            client, accepted, shed = _offer_burst(core)
            assert len(accepted) == QUEUE_DEPTH
            assert len(shed) == BURST_COUNT - QUEUE_DEPTH
            assert all(
                isinstance(r, Rejected) and r.reason == REJECT_QUEUE_FULL
                for r in shed.values()
            )
            # Every shed request was answered immediately with a typed
            # shed response (the client saw it without any dispatch).
            responses = client.responses()
            assert set(responses) == set(shed)
            assert all(
                response["status"] == "shed"
                and response["reason"] == REJECT_QUEUE_FULL
                for response in responses.values()
            )
            partitions.append((tuple(accepted), tuple(sorted(shed))))
        assert partitions[0] == partitions[1]
        # Bounded FIFO admission accepts exactly the burst prefix.
        assert list(partitions[0][0]) == [
            f"r{i:04d}" for i in range(QUEUE_DEPTH)
        ]

    def test_accepted_results_byte_identical_to_direct_run_jobs(self):
        config = ServeConfig(workers=2, queue_depth=QUEUE_DEPTH)
        core = ServerCore(config)
        core.pause()  # freeze dispatch so admission sees the whole burst
        core.start()
        try:
            client, accepted, _shed = _offer_burst(core)
            core.unpause()
            client.wait_all(BURST_COUNT, timeout=300.0)
            burst = {
                r.id: r for r in seeded_burst(BURST_SEED, BURST_COUNT,
                                              num_ops=250)
            }
            for request_id in accepted:
                response = client.collect(request_id, timeout=1.0)
                assert response["status"] == "ok", response
                reference = _reference_results(
                    burst[request_id], config.workers
                )
                assert _canon(response["results"]) == _canon(reference)
            assert core.completed == len(accepted)
        finally:
            core.stop()


# --- deadlines ---------------------------------------------------------------


class TestDeadlines:
    def test_request_expired_in_queue_is_shed_not_run(self):
        clock = ManualClock()
        core = ServerCore(ServeConfig(queue_depth=4), clock=clock)
        core.pause()
        core.start()
        try:
            client = InProcessClient(core)
            request = SimRequest(
                id="late", benchmarks=("mcf",), num_ops=200, deadline_s=5.0
            )
            assert client.send(request) is None
            clock.advance(6.0)  # the budget dies while queued
            core.unpause()
            response = client.collect("late", timeout=30.0)
            assert response["status"] == "shed"
            assert response["reason"] == REJECT_DEADLINE
        finally:
            core.stop()

    def test_config_default_deadline_applies(self):
        clock = ManualClock()
        core = ServerCore(
            ServeConfig(queue_depth=4, default_deadline_s=3.0), clock=clock
        )
        core.pause()
        core.start()
        try:
            client = InProcessClient(core)
            assert client.send(
                SimRequest(id="r", benchmarks=("mcf",), num_ops=200)
            ) is None
            clock.advance(4.0)
            core.unpause()
            assert client.collect("r", timeout=30.0)["status"] == "shed"
        finally:
            core.stop()


# --- breaker trip and recovery under injected pool crashes -------------------


class TestBreakerUnderFaults:
    def test_sigkill_storm_trips_breaker_then_half_open_recovery(
        self, tmp_path
    ):
        clock = ManualClock()
        config = ServeConfig(
            workers=2,
            queue_depth=16,
            retries=0,  # failures surface to the breaker immediately
            breaker=BreakerPolicy(
                window=4, failure_rate=0.5, min_calls=2, open_seconds=30.0
            ),
            restart_backoff=RetryPolicy(
                attempts=3, base_delay=0.05, multiplier=4.0, jitter_frac=0.0
            ),
        )
        core = ServerCore(config, clock=clock)
        core.start()
        client = InProcessClient(core)

        def sweep(request_id):
            # Two benchmarks: rides the warm pool, where worker_sigkill
            # lands.  Single-benchmark requests run serially and are
            # immune by construction.
            return SimRequest(
                id=request_id,
                benchmarks=("mcf", "lbm"),
                scheme="cobcm",
                num_ops=200,
            )

        # Every worker's first task dies while the plan is armed: each
        # sweep observes a broken pool and fails (retries=0).  The pool
        # forked before arming would dodge the fault, so force a fresh
        # fork inside the armed region.
        shutdown_shared_pool(wait=False)
        plan = FaultPlan(
            seed=0,
            specs=(
                FaultSpec(
                    op="worker.task", index=0, kind="worker_sigkill", count=64
                ),
            ),
        )
        try:
            with injected(plan):
                for request_id in ("kill1", "kill2"):
                    assert client.send(sweep(request_id)) is None
                    # An "error" response proves the storm landed: the
                    # kills fire in forked workers (whose context copies
                    # record them), and the parent observes the broken
                    # pool.  Nothing else can fail a 200-op sweep.
                    response = client.collect(request_id, timeout=120.0)
                    assert response["status"] == "error", response
                breaker = core.breaker_for("cobcm")
                assert breaker.state == OPEN
                assert (CLOSED, OPEN) in breaker.transitions
                # While open, requests for the scheme shed immediately
                # without burning a pool fork.
                assert client.send(sweep("shedme")) is None
                response = client.collect("shedme", timeout=30.0)
                assert response["status"] == "shed"
                assert response["reason"] == REJECT_BREAKER_OPEN
                # Other schemes have their own breakers, still closed.
                assert core.breaker_for("nogap").state == CLOSED
            # The supervisor paced each refork on the virtual clock:
            # no real time was burned in the crash loop.
            assert core.restarts.restarts == 2
            assert clock.sleeps  # pacing happened, virtually
        finally:
            # Tear down the armed-at-fork pool so the probe (and later
            # tests) run faultless.
            shutdown_shared_pool(wait=False)

        try:
            # Cooldown not served: still shedding.
            assert not core.breaker_for("cobcm").allow()
            clock.advance(31.0)
            probe = sweep("probe")
            assert client.send(probe) is None
            response = client.collect("probe", timeout=120.0)
            assert response["status"] == "ok", response
            breaker = core.breaker_for("cobcm")
            assert breaker.state == CLOSED
            assert breaker.transitions == [
                (CLOSED, OPEN),
                (OPEN, HALF_OPEN),
                (HALF_OPEN, CLOSED),
            ]
            # The probe's results are the reference bytes, crash
            # history notwithstanding.
            assert _canon(response["results"]) == _canon(
                _reference_results(probe, config.workers)
            )
            assert core.stats()["pool_restarts"] == 2
        finally:
            core.stop()


# --- graceful drain ----------------------------------------------------------


class TestDrain:
    def _requests(self):
        return [
            SimRequest(id="q1", benchmarks=("mcf",), num_ops=150),
            SimRequest(
                id="q2", benchmarks=("lbm", "milc"), scheme="cobcm",
                num_ops=150, seed=2,
            ),
            SimRequest(id="q3", benchmarks=("bzip2",), scheme="nogap",
                       num_ops=150),
        ]

    def test_drain_journals_queue_and_replays_byte_identical(self, tmp_path):
        core = ServerCore(ServeConfig(queue_depth=8, workers=2))
        client = InProcessClient(core)
        requests = self._requests()
        for request in requests:
            assert client.send(request) is None
        journal_path = tmp_path / "serve.drain.jsonl"

        journaled = core.drain(journal_path)
        assert journaled == len(requests)
        assert core.journaled == len(requests)
        for request in requests:
            response = client.collect(request.id, timeout=1.0)
            assert response["status"] == "journaled"
            assert response["journal"] == str(journal_path)
        # Admission is closed: late offers shed with ``draining``.
        late = client.send(SimRequest(id="late", benchmarks=("mcf",)))
        assert isinstance(late, Rejected)
        assert late.reason == REJECT_DRAINING
        # A second drain is a no-op and must not clobber the journal.
        assert core.drain(tmp_path / "other.jsonl") == 0

        # The journal parses back into the exact requests, in order.
        assert read_drained_requests(journal_path) == requests
        # Replay produces the bytes the live server would have.
        replayed = execute_drained(journal_path, workers=2)
        assert list(replayed) == [r.id for r in requests]
        for request in requests:
            assert _canon(replayed[request.id]) == _canon(
                _reference_results(request, workers=2)
            )

    def test_empty_queue_drain_writes_no_journal(self, tmp_path):
        core = ServerCore(ServeConfig(queue_depth=4))
        journal_path = tmp_path / "empty.jsonl"
        assert core.drain(journal_path) == 0
        assert not journal_path.exists()

    def test_foreign_journal_rejected(self, tmp_path):
        from repro.durability.journal import JournalError, JournalWriter

        path = tmp_path / "foreign.jsonl"
        JournalWriter.create(path, "campaign", {"x": 1}).close()
        with pytest.raises(JournalError, match="not 'serve-drain'"):
            read_drained_requests(path)


# --- control plane -----------------------------------------------------------


class TestControlPlane:
    def test_health_tracks_dispatcher_and_drain(self, tmp_path):
        core = ServerCore(ServeConfig(queue_depth=4))
        client = InProcessClient(core)
        assert client.control("health")["ready"] is False
        core.start()
        try:
            assert client.control("health")["ready"] is True
        finally:
            core.drain(tmp_path / "drain.jsonl")
        health = client.control("health")
        assert health["draining"] is True

    def test_stats_shape(self):
        metrics = MetricsRegistry()
        core = ServerCore(ServeConfig(queue_depth=4), metrics=metrics)
        client = InProcessClient(core)
        client.send(SimRequest(id="r", benchmarks=("mcf",), num_ops=150))
        stats = client.control("stats")["stats"]
        assert stats["queue_depth"] == 1
        assert stats["accepted"] == 1
        assert stats["shed"] == 0
        for key in (
            "completed", "errors", "journaled", "in_flight", "draining",
            "breakers", "pool", "pool_restarts",
        ):
            assert key in stats
        # Admission flowed through the shared metrics registry too.
        names = set(metrics.snapshot(include_nondeterministic=True))
        assert "resilience.admission_accepted" in names
        core.stop()
