"""Tests for repro.sim.hierarchy — the assembled cache stack."""

from repro.sim.cache import BlockState
from repro.sim.hierarchy import MemoryHierarchy


class TestLoadLatency:
    def test_cold_load_goes_to_memory(self):
        h = MemoryHierarchy()
        latency = h.load_latency(0x1000)
        assert latency == 2 + 20 + 30 + 220

    def test_warm_load_hits_l1(self):
        h = MemoryHierarchy()
        h.load_latency(0x1000)
        assert h.load_latency(0x1000) == 2

    def test_l2_hit_after_l1_eviction(self):
        h = MemoryHierarchy()
        h.load_latency(0)
        # Evict block 0 from L1 by filling its set (128 sets, 8 ways).
        for i in range(1, 10):
            h.load_latency(i * 128 * 64)
        latency = h.load_latency(0)
        assert latency == 2 + 20  # L1 miss, L2 hit

    def test_memory_reads_counted(self):
        h = MemoryHierarchy()
        h.load_latency(0)
        h.load_latency(64)
        assert h.stats.get("hierarchy.memory_reads") == 2


class TestStorePath:
    def test_store_hit_is_l1_latency(self):
        h = MemoryHierarchy()
        h.store_access(0x40, persist_region=True)
        latency, hit = h.store_access(0x40, persist_region=True)
        assert hit
        assert latency == 2

    def test_store_miss_charges_fill_path(self):
        h = MemoryHierarchy()
        latency, hit = h.store_access(0x40, persist_region=True)
        assert not hit
        assert latency == 2 + 20 + 30 + 220

    def test_persistent_store_installs_persist_dirty(self):
        h = MemoryHierarchy()
        h.store_access(0x40, persist_region=True)
        assert h.l1.lookup(0x40).state is BlockState.PERSIST_DIRTY

    def test_volatile_store_installs_modified(self):
        h = MemoryHierarchy()
        h.store_access(0x40, persist_region=False)
        assert h.l1.lookup(0x40).state is BlockState.MODIFIED


class TestCrash:
    def test_discard_volatile_empties_caches(self):
        h = MemoryHierarchy()
        for i in range(10):
            h.store_access(i * 64, persist_region=True)
        h.discard_volatile()
        assert h.l1.occupancy() == 0
        assert h.l2.occupancy() == 0
        assert h.l3.occupancy() == 0

    def test_discard_volatile_counts_only_non_persistent_dirty(self):
        h = MemoryHierarchy()
        h.store_access(0, persist_region=True)
        h.store_access(64, persist_region=False)
        lost = h.discard_volatile()
        assert lost == 1  # only the non-persistent MODIFIED block

    def test_discard_volatile_flushes_wpq(self):
        h = MemoryHierarchy()
        h.mc.enqueue(7, bytes(64))
        h.discard_volatile()
        assert h.mc.wpq_occupancy == 0
        assert 7 in h.nvm.written_blocks()
