"""Tests for repro.sim.cache — LRU, states, persist-dirty silent discard."""

import pytest

from repro.sim.cache import AccessOutcome, BlockState, Cache
from repro.sim.config import CacheConfig
from repro.sim.stats import StatsCollector


def tiny_cache(ways=2, sets=2):
    config = CacheConfig("T", size_bytes=64 * ways * sets, ways=ways)
    return Cache(config, StatsCollector())


class TestBasicAccess:
    def test_first_access_misses_then_hits(self):
        cache = tiny_cache()
        outcome, _ = cache.access(0x40, is_write=False)
        assert outcome is AccessOutcome.MISS
        outcome, _ = cache.access(0x40, is_write=False)
        assert outcome is AccessOutcome.HIT

    def test_same_block_different_bytes_hit(self):
        cache = tiny_cache()
        cache.access(0x40, is_write=False)
        outcome, _ = cache.access(0x7F, is_write=False)
        assert outcome is AccessOutcome.HIT

    def test_read_fill_state_is_exclusive(self):
        cache = tiny_cache()
        cache.access(0x40, is_write=False)
        assert cache.lookup(0x40).state is BlockState.EXCLUSIVE

    def test_write_fill_state_is_modified(self):
        cache = tiny_cache()
        cache.access(0x40, is_write=True)
        assert cache.lookup(0x40).state is BlockState.MODIFIED

    def test_persistent_write_state_is_persist_dirty(self):
        cache = tiny_cache()
        cache.access(0x40, is_write=True, persist_region=True)
        assert cache.lookup(0x40).state is BlockState.PERSIST_DIRTY

    def test_contains(self):
        cache = tiny_cache()
        assert not cache.contains(0x40)
        cache.access(0x40, is_write=False)
        assert cache.contains(0x40)


class TestLRU:
    def test_lru_victim_is_least_recently_used(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.access(0 * 64, is_write=False)
        cache.access(1 * 64, is_write=False)
        cache.access(0 * 64, is_write=False)  # touch 0: now MRU
        _, eviction = cache.access(2 * 64, is_write=False)
        assert eviction is not None
        assert eviction.block_addr == 1  # block 1 was LRU

    def test_occupancy_bounded_by_ways(self):
        cache = tiny_cache(ways=2, sets=1)
        for i in range(5):
            cache.access(i * 64, is_write=False)
        assert cache.occupancy() == 2


class TestEvictionSemantics:
    def test_modified_victim_requires_writeback(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.access(0, is_write=True)
        _, eviction = cache.access(64, is_write=False)
        assert eviction.writeback_required

    def test_persist_dirty_victim_is_silently_discarded(self):
        """Sec. IV-C-a: SecPB-guaranteed blocks discard silently on LLC
        eviction instead of writing back."""
        cache = tiny_cache(ways=1, sets=1)
        cache.access(0, is_write=True, persist_region=True)
        _, eviction = cache.access(64, is_write=False)
        assert eviction is not None
        assert not eviction.writeback_required
        assert cache.stats.get("cache.T.silent_discards") == 1

    def test_clean_victim_has_no_writeback(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.access(0, is_write=False)
        _, eviction = cache.access(64, is_write=False)
        assert not eviction.writeback_required


class TestStateTransitions:
    def test_downgrade_to_shared(self):
        cache = tiny_cache()
        cache.access(0x40, is_write=True)
        cache.downgrade(0x40)
        assert cache.lookup(0x40).state is BlockState.SHARED

    def test_invalidate_removes_block(self):
        cache = tiny_cache()
        cache.access(0x40, is_write=True)
        removed = cache.invalidate(0x40)
        assert removed is not None
        assert not cache.contains(0x40)

    def test_invalidate_missing_returns_none(self):
        assert tiny_cache().invalidate(0x40) is None


class TestCrashSemantics:
    def test_flush_all_counts_lost_modified_blocks(self):
        cache = tiny_cache()
        cache.access(0 * 64, is_write=True)  # MODIFIED: lost
        cache.access(1 * 64, is_write=True, persist_region=True)  # PD: safe
        cache.access(2 * 64, is_write=False)  # clean
        lost = cache.flush_all()
        assert lost == 1
        assert cache.occupancy() == 0

    def test_persist_dirty_never_counts_as_lost(self):
        """The whole point of the SecPB: persistent-region data in caches
        is already persisted, so losing the cached copy loses nothing."""
        cache = tiny_cache()
        for i in range(4):
            cache.access(i * 64, is_write=True, persist_region=True)
        assert cache.flush_all() == 0


class TestDirtyIteration:
    def test_dirty_blocks_iterates_m_and_pd(self):
        cache = tiny_cache()
        cache.access(0 * 64, is_write=True)
        cache.access(1 * 64, is_write=True, persist_region=True)
        cache.access(2 * 64, is_write=False)
        states = {b.state for b in cache.dirty_blocks()}
        assert states == {BlockState.MODIFIED, BlockState.PERSIST_DIRTY}


def test_non_power_of_two_block_rejected():
    with pytest.raises(ValueError):
        Cache(CacheConfig("bad", size_bytes=60 * 4, ways=2, block_bytes=60))
