"""Tests for repro.core.simulator — the trace-driven timing model."""

import pytest

from repro.core.schemes import SCHEMES, SPECTRUM_ORDER, get_scheme
from repro.core.simulator import SecurePersistencySimulator, run_scheme
from repro.sim.config import SystemConfig
from repro.workloads.synthetic import uniform_trace, zipf_trace


@pytest.fixture(scope="module")
def trace():
    return zipf_trace(
        num_ops=3000,
        working_set_blocks=1000,
        zipf_alpha=0.6,
        store_fraction=0.6,
        burst_length=2,
        mean_gap=3.0,
        seed=3,
        name="unit",
    )


class TestBasicRuns:
    def test_bbb_run_produces_result(self, trace):
        result = SecurePersistencySimulator(scheme=None).run(trace)
        assert result.scheme == "bbb"
        assert result.benchmark == "unit"
        assert result.cycles > 0
        assert result.instructions == trace.instructions

    def test_deterministic(self, trace):
        sim = SecurePersistencySimulator(scheme=get_scheme("cm"))
        a = sim.run(trace)
        b = SecurePersistencySimulator(scheme=get_scheme("cm")).run(trace)
        assert a.cycles == b.cycles
        assert a.stats == b.stats

    def test_all_schemes_run(self, trace):
        for name in SPECTRUM_ORDER:
            result = run_scheme(trace, SCHEMES[name])
            assert result.cycles > 0
            assert result.scheme == name

    def test_stats_contain_ppti_and_nwpe(self, trace):
        result = run_scheme(trace, get_scheme("cm"))
        assert result.stats["ppti"] > 0
        assert result.stats["nwpe"] >= 1.0


class TestSchemeOrdering:
    def test_security_never_speeds_up_execution(self, trace):
        base = SecurePersistencySimulator(scheme=None).run(trace)
        for name in SPECTRUM_ORDER:
            result = run_scheme(trace, SCHEMES[name])
            assert result.cycles >= base.cycles * 0.999

    def test_spectrum_ordering_on_write_heavy_trace(self, trace):
        """Table IV's ordering: lazier schemes are faster."""
        cycles = {
            name: run_scheme(trace, SCHEMES[name]).cycles
            for name in SPECTRUM_ORDER
        }
        assert cycles["cobcm"] <= cycles["bcm"] * 1.001
        assert cycles["bcm"] <= cycles["cm"] * 1.001
        assert cycles["cm"] <= cycles["nogap"] * 1.001

    def test_eager_schemes_count_bmt_updates(self, trace):
        result = run_scheme(trace, get_scheme("cm"))
        assert result.stats.get("bmt.root_updates", 0) > 0
        assert result.stats.get("bmt.root_updates") == result.stats.get(
            "secpb.allocations"
        )

    def test_bbb_does_no_security_work(self, trace):
        result = SecurePersistencySimulator(scheme=None).run(trace)
        assert result.stats.get("bmt.root_updates", 0) == 0
        assert result.stats.get("mac.generations", 0) == 0


class TestSecPBSizeEffect:
    def test_larger_secpb_coalesces_more(self):
        """Fig. 7/8 mechanism: more entries -> fewer allocations (higher
        NWPE) on a reuse-heavy trace."""
        reuse_trace = zipf_trace(
            num_ops=6000,
            working_set_blocks=120,
            zipf_alpha=0.9,
            store_fraction=0.8,
            burst_length=4,
            mean_gap=1.0,
            seed=5,
            name="reuse",
        )
        small = SecurePersistencySimulator(
            config=SystemConfig().with_secpb_entries(8), scheme=get_scheme("cm")
        ).run(reuse_trace)
        large = SecurePersistencySimulator(
            config=SystemConfig().with_secpb_entries(256), scheme=get_scheme("cm")
        ).run(reuse_trace)
        assert large.stats["nwpe"] > small.stats["nwpe"]
        assert large.stats["secpb.allocations"] < small.stats["secpb.allocations"]

    def test_larger_secpb_is_not_slower_under_cm(self):
        reuse_trace = zipf_trace(
            num_ops=6000,
            working_set_blocks=120,
            zipf_alpha=0.9,
            store_fraction=0.8,
            burst_length=4,
            mean_gap=1.0,
            seed=5,
            name="reuse",
        )
        small = SecurePersistencySimulator(
            config=SystemConfig().with_secpb_entries(8), scheme=get_scheme("cm")
        ).run(reuse_trace)
        large = SecurePersistencySimulator(
            config=SystemConfig().with_secpb_entries(256), scheme=get_scheme("cm")
        ).run(reuse_trace)
        assert large.cycles <= small.cycles


class TestWarmup:
    def test_warmup_excludes_leading_cycles(self, trace):
        sim = SecurePersistencySimulator(scheme=get_scheme("cm"))
        full = sim.run(trace)
        measured = SecurePersistencySimulator(scheme=get_scheme("cm")).run(
            trace, warmup_frac=0.5
        )
        assert measured.instructions < full.instructions
        assert measured.cycles < full.cycles

    def test_invalid_warmup_rejected(self, trace):
        sim = SecurePersistencySimulator(scheme=get_scheme("cm"))
        with pytest.raises(ValueError):
            sim.run(trace, warmup_frac=1.0)
        with pytest.raises(ValueError):
            sim.run(trace, warmup_frac=-0.1)


class TestBmfHook:
    def test_reduced_height_speeds_up_cm(self, trace):
        full = run_scheme(trace, get_scheme("cm"))
        dbmf = run_scheme(trace, get_scheme("cm"), bmt_levels_fn=lambda p: 2)
        assert dbmf.cycles < full.cycles


class TestBackflow:
    def test_backflow_stalls_on_drain_saturation(self):
        """A store storm over unique blocks outruns the MC drain engine and
        fills the SecPB (COBCM's characteristic overhead)."""
        storm = uniform_trace(
            num_ops=4000,
            working_set_blocks=100_000,
            store_fraction=1.0,
            mean_gap=0.0,
            seed=9,
            name="storm",
        )
        result = run_scheme(storm, get_scheme("cobcm"))
        assert result.stats.get("secpb.backflow_stalls", 0) > 0
        assert result.stats.get("secpb.backflow_cycles", 0) > 0
