"""The whole-program semantic lint layer (repro.lint.semantic).

Pins every layer against committed fixture trees in
``tests/data/semantic/`` and small in-memory projects:

* the project model (module naming, imports, reverse dependencies);
* the call graph (methods, aliases, the recorded ``unresolved`` set);
* the SPB7xx/8xx/9xx rule families against *planted* violations,
  including the acceptance scenario — a two-hop laundered
  ``time.time()`` flagged by SPB701 while the equivalent direct call
  stays SPB102-only (no double-reporting);
* the CLI surface added with the pass: ``--no-semantic``, the
  incremental cache (``--no-cache`` / ``--cache-file``), ``--changed``
  expansion, and fingerprinted baselines.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import analyze_paths, lint_paths, run_project_rules
from repro.lint.base import select_project_rules
from repro.lint.baseline import Baseline
from repro.lint.cache import LintCache, tool_fingerprint
from repro.lint.changed import expand_changed
from repro.lint.cli import main as lint_main
from repro.lint.findings import Finding, Severity
from repro.lint.semantic import SemanticAnalysis
from repro.lint.semantic.project import ProjectModel

FIXTURES = Path(__file__).resolve().parent / "data" / "semantic"
TAINT_TREE = FIXTURES / "taint_tree"
IO_TREE = FIXTURES / "io_tree"
EXC_TREE = FIXTURES / "exc_tree"


def semantic_findings(tree, codes=None):
    analysis = analyze_paths([tree])
    rules = select_project_rules(select=codes)
    return run_project_rules(analysis, rules=rules)


# ----------------------------------------------------------------------
# project model


def test_fixture_trees_scope_like_the_real_source():
    project = ProjectModel.build([TAINT_TREE])
    assert "repro.sim.engine" in project.modules
    assert "repro.util.clock" in project.modules
    assert not project.parse_errors


def test_import_graph_and_reverse_dependents():
    project = ProjectModel.build([TAINT_TREE])
    assert "repro.util.clock" in project.import_graph["repro.sim.engine"]
    dependents = project.dependents_of(["repro.util.clock"])
    assert "repro.sim.engine" in dependents


def test_relative_and_aliased_imports_resolve():
    project = ProjectModel.from_sources(
        {
            "pkg": ("pkg/__init__.py", ""),
            "pkg.helpers": (
                "pkg/helpers.py",
                "def helper():\n    return 1\n",
            ),
            "pkg.consumer": (
                "pkg/consumer.py",
                "from .helpers import helper as h\n\n"
                "def use():\n    return h()\n",
            ),
        }
    )
    module = project.modules["pkg.consumer"]
    assert project.resolve_chain(module, ["h"]) == "pkg.helpers.helper"


# ----------------------------------------------------------------------
# call graph


def test_call_graph_resolves_functions_methods_and_self_calls():
    project = ProjectModel.from_sources(
        {
            "pkg": ("pkg/__init__.py", ""),
            "pkg.engine": (
                "pkg/engine.py",
                "class Engine:\n"
                "    def step(self):\n"
                "        return self.tick()\n"
                "    def tick(self):\n"
                "        return 0\n"
                "\n"
                "def drive():\n"
                "    eng = Engine()\n"
                "    return eng.step()\n",
            ),
        }
    )
    graph = SemanticAnalysis(project).graph
    step_callees = {s.callee for s in graph.call_sites("pkg.engine.Engine.step")}
    assert "pkg.engine.Engine.tick" in step_callees
    drive_callees = {s.callee for s in graph.call_sites("pkg.engine.drive")}
    assert "pkg.engine.Engine.__init__" not in drive_callees  # no __init__ def
    assert "pkg.engine.Engine.step" in drive_callees


def test_unresolved_calls_are_recorded_not_dropped():
    project = ProjectModel.from_sources(
        {
            "pkg": ("pkg/__init__.py", ""),
            "pkg.dyn": (
                "pkg/dyn.py",
                "def run(callback):\n    return callback()\n",
            ),
        }
    )
    graph = SemanticAnalysis(project).graph
    assert any(
        u.caller == "pkg.dyn.run" for u in graph.unresolved
    ), "dynamic call must land in the unresolved set, not vanish"


def test_real_tree_unresolved_set_is_recorded():
    analysis = analyze_paths([Path("src")])
    graph = analysis.graph
    total_sites = sum(len(sites) for sites in graph.edges.values())
    assert total_sites > 500, "the resolved call graph must be non-trivial"
    # Soundness-gap bookkeeping: dynamic/duck-typed calls are real; they
    # must land in the unresolved set with caller and target recorded.
    assert graph.unresolved
    assert all(u.caller and u.target for u in graph.unresolved)


# ----------------------------------------------------------------------
# SPB701-704: interprocedural determinism taint


def test_two_hop_wallclock_taint_flagged_spb701():
    findings = semantic_findings(TAINT_TREE, codes=["SPB701"])
    assert len(findings) == 1
    finding = findings[0]
    assert finding.code == "SPB701"
    assert finding.path.endswith("repro/sim/engine.py")
    assert "timestamp" in finding.message
    assert "read_clock" in finding.message
    assert "time.time()" in finding.message


def test_direct_call_is_spb102_only_no_double_report():
    per_file = lint_paths([TAINT_TREE])
    spb102_lines = {f.line for f in per_file if f.code == "SPB102"}
    assert spb102_lines, "the planted direct time.time() must stay SPB102"
    semantic = semantic_findings(TAINT_TREE)
    spb701_lines = {f.line for f in semantic if f.code == "SPB701"}
    assert not (
        spb102_lines & spb701_lines
    ), "a line flagged by SPB102 must never also be flagged by SPB701"


def test_env_and_setorder_taint_flagged():
    codes = {f.code for f in semantic_findings(TAINT_TREE)}
    assert "SPB703" in codes
    assert "SPB704" in codes


def test_sorted_sanitizes_set_order():
    findings = semantic_findings(TAINT_TREE, codes=["SPB704"])
    assert len(findings) == 1  # only order_events; sorted_events is clean
    assert "dedupe" in findings[0].message


def test_project_rule_suppressions_honoured(tmp_path):
    # Rebuild the taint fixture with a suppression on the flagged line.
    src = (TAINT_TREE / "repro" / "sim" / "engine.py").read_text()
    patched = src.replace(
        'result["t"] = timestamp()',
        'result["t"] = timestamp()  # secpb-lint: disable=SPB701',
    )
    assert patched != src
    root = tmp_path / "tree"
    for path in TAINT_TREE.rglob("*.py"):
        rel = path.relative_to(TAINT_TREE)
        out = root / rel
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(patched if rel.name == "engine.py" else path.read_text())
    findings = semantic_findings(root, codes=["SPB701"])
    assert findings == []


# ----------------------------------------------------------------------
# SPB801-802: artifact-IO reachability


def test_laundered_json_dump_flagged_spb802():
    findings = semantic_findings(IO_TREE, codes=["SPB802"])
    by_message = {f.message for f in findings}
    assert any("dump_json" in m for m in by_message)
    assert any("leaky_write" in m for m in by_message)
    # The sanctioned write_artifact path must stay clean.
    assert not any("save_clean" in m for m in by_message)


def test_durability_leak_flagged_spb801():
    findings = semantic_findings(IO_TREE, codes=["SPB801"])
    assert len(findings) == 1
    assert "_raw2" in findings[0].message
    assert "save_leaky" in findings[0].message


# ----------------------------------------------------------------------
# SPB901: cross-module exception flow


def test_swallowed_crash_exception_flagged_spb901():
    findings = semantic_findings(EXC_TREE, codes=["SPB901"])
    assert len(findings) == 1
    finding = findings[0]
    assert "CrashVerdictError" in finding.message
    assert "verify_recovery" in finding.message
    assert finding.path.endswith("repro/analysis/grader.py")


def test_logging_handler_is_compliant():
    findings = semantic_findings(EXC_TREE, codes=["SPB901"])
    # grade_loud logs before degrading: exactly one finding (grade).
    assert len(findings) == 1


# ----------------------------------------------------------------------
# incremental cache


def test_cache_roundtrip_and_content_invalidation(tmp_path):
    cache_path = tmp_path / "cache.json"
    fingerprint = tool_fingerprint()
    cache = LintCache(cache_path, fingerprint)
    finding = Finding(
        code="SPB102",
        severity=Severity.ERROR,
        path="x.py",
        line=3,
        col=0,
        message="m",
    )
    cache.put_file("x.py", "digest-a", "pkg.x", [finding])
    cache.save()

    loaded = LintCache.load(cache_path, fingerprint)
    hit = loaded.get_file("x.py", "digest-a", "pkg.x")
    assert hit == [finding]
    assert loaded.get_file("x.py", "digest-B", "pkg.x") is None
    assert loaded.get_file("x.py", "digest-a", "other.module") is None
    assert loaded.hits == 1 and loaded.misses == 2


def test_cache_dropped_on_fingerprint_change(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache = LintCache(cache_path, "fp-1")
    cache.put_file("x.py", "d", "m", [])
    cache.save()
    assert LintCache.load(cache_path, "fp-1").get_file("x.py", "d", "m") == []
    assert LintCache.load(cache_path, "fp-2").get_file("x.py", "d", "m") is None


def test_corrupt_cache_file_is_ignored(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    loaded = LintCache.load(cache_path, "fp")
    assert loaded.get_file("x.py", "d", "m") is None


def test_cli_cache_speeds_up_and_is_correct(tmp_path):
    cache_file = str(tmp_path / "cache.json")
    tree = str(TAINT_TREE)
    first = lint_main([tree, "--cache-file", cache_file])
    second = lint_main([tree, "--cache-file", cache_file])
    assert first == second == 1  # planted findings, identical verdict
    assert Path(cache_file).exists()


def test_tool_fingerprint_covers_rule_selection():
    assert tool_fingerprint() != tool_fingerprint(extra=["select:SPB102"])


# ----------------------------------------------------------------------
# --changed expansion


def test_expand_changed_includes_reverse_dependents():
    helper = TAINT_TREE / "repro" / "util" / "clock.py"
    expanded = expand_changed([TAINT_TREE], [helper])
    names = {p.name for p in expanded}
    assert "clock.py" in names
    assert "engine.py" in names, "importers of the changed module re-lint"
    assert "collections.py" not in names  # unrelated module stays out


def test_expand_changed_outside_target_is_empty(tmp_path):
    other = tmp_path / "other.py"
    other.write_text("x = 1\n")
    assert expand_changed([TAINT_TREE], [other]) == []


# ----------------------------------------------------------------------
# baselines


def _planted_findings():
    return lint_paths([TAINT_TREE]) + semantic_findings(TAINT_TREE)


def test_baseline_subtracts_known_findings(tmp_path):
    findings = _planted_findings()
    assert findings
    baseline = Baseline.from_findings(findings)
    new, stale = baseline.apply(findings)
    assert new == [] and stale == []


def test_baseline_survives_line_shifts(tmp_path):
    # The fingerprint hashes line *content*, not line numbers: inserting
    # unrelated lines above the finding keeps the baseline valid.
    root = tmp_path / "tree"
    (root / "repro" / "sim").mkdir(parents=True)
    (root / "repro" / "__init__.py").write_text("")
    (root / "repro" / "sim" / "__init__.py").write_text("")
    bad = root / "repro" / "sim" / "eng.py"
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    baseline = Baseline.from_findings(lint_paths([root]))
    bad.write_text(
        "import time\n\nPAD = 1\nPAD2 = 2\n\n\ndef stamp():\n"
        "    return time.time()\n"
    )
    shifted = lint_paths([root])
    assert {f.line for f in shifted} != {
        e["line"] for e in baseline.entries
    }, "the finding really moved"
    new, stale = baseline.apply(shifted)
    assert new == [] and stale == []


def test_cli_baseline_flow(tmp_path, capsys):
    baseline_file = str(tmp_path / "lint-baseline.json")
    tree = str(TAINT_TREE)
    args = [tree, "--no-cache", "--baseline", baseline_file]
    assert lint_main(args + ["--update-baseline"]) == 0
    capsys.readouterr()
    assert lint_main(args) == 0, "baselined tree reports clean"
    out = capsys.readouterr().out
    assert "secpb-lint: clean" in out


def test_cli_stale_baseline_is_an_error(tmp_path, capsys):
    # Baseline a tree, then fix the findings: stale entries -> exit 2.
    root = tmp_path / "tree"
    (root / "repro" / "sim").mkdir(parents=True)
    (root / "repro" / "__init__.py").write_text("")
    (root / "repro" / "sim" / "__init__.py").write_text("")
    bad = root / "repro" / "sim" / "eng.py"
    bad.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    baseline_file = str(tmp_path / "bl.json")
    args = [str(root), "--no-cache", "--baseline", baseline_file]
    assert lint_main(args + ["--update-baseline"]) == 0
    assert lint_main(args) == 0
    bad.write_text("def stamp():\n    return 0.0\n")
    capsys.readouterr()
    assert lint_main(args) == 2
    err = capsys.readouterr().err
    assert "stale baseline entry" in err


# ----------------------------------------------------------------------
# CLI composition


def test_no_semantic_hides_project_findings(capsys):
    tree = str(TAINT_TREE)
    assert lint_main([tree, "--no-cache", "--no-semantic"]) == 1
    out = capsys.readouterr().out
    assert "SPB102" in out
    assert "SPB701" not in out


def test_json_report_includes_semantic_codes(capsys):
    assert lint_main([str(TAINT_TREE), "--no-cache", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"].get("SPB701") == 1
    assert payload["counts"].get("SPB102") == 1


def test_list_rules_includes_semantic_codes(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SPB701", "SPB702", "SPB703", "SPB704", "SPB801", "SPB802", "SPB901"):
        assert code in out


def test_select_semantic_code_runs_only_that_family(capsys):
    assert (
        lint_main([str(TAINT_TREE), "--no-cache", "--select", "SPB701"]) == 1
    )
    out = capsys.readouterr().out
    assert "SPB701" in out
    assert "SPB102" not in out
