"""Tests for repro.core.multicore — multi-core SecPB timing."""

import pytest

from repro.core.multicore import MultiCoreSecPBSimulator, sharing_traces
from repro.core.schemes import get_scheme


def traces(cores, num_ops=1500, share=0.2, seed=5):
    return sharing_traces(cores, num_ops, share_fraction=share, seed=seed)


class TestConstruction:
    def test_needs_at_least_one_core(self):
        with pytest.raises(ValueError):
            MultiCoreSecPBSimulator(0)

    def test_trace_count_must_match_cores(self):
        sim = MultiCoreSecPBSimulator(2, get_scheme("cobcm"))
        with pytest.raises(ValueError, match="expected 2"):
            sim.run(traces(3))

    def test_share_fraction_validated(self):
        with pytest.raises(ValueError):
            sharing_traces(2, 100, share_fraction=1.5)


class TestBasicRuns:
    def test_single_core_runs(self):
        sim = MultiCoreSecPBSimulator(1, get_scheme("cobcm"))
        result = sim.run(traces(1))
        assert result.cores == 1
        assert result.cycles > 0
        assert len(result.per_core_cycles) == 1

    def test_multi_core_runs_all_schemes(self):
        for name in ("cobcm", "cm", "nogap"):
            sim = MultiCoreSecPBSimulator(4, get_scheme(name))
            result = sim.run(traces(4))
            assert result.scheme == name
            assert result.cycles == max(result.per_core_cycles)

    def test_bbb_multicore(self):
        result = MultiCoreSecPBSimulator(2, None).run(traces(2))
        assert result.scheme == "bbb"

    def test_deterministic(self):
        sim = MultiCoreSecPBSimulator(2, get_scheme("cm"))
        a = sim.run(traces(2))
        b = MultiCoreSecPBSimulator(2, get_scheme("cm")).run(traces(2))
        assert a.cycles == b.cycles


class TestCoherenceTraffic:
    def test_sharing_produces_migrations(self):
        sim = MultiCoreSecPBSimulator(4, get_scheme("cobcm"))
        result = sim.run(traces(4, share=0.3))
        assert result.stats.get("coherence.migrations", 0) > 0

    def test_no_sharing_no_migrations(self):
        sim = MultiCoreSecPBSimulator(4, get_scheme("cobcm"))
        result = sim.run(traces(4, share=0.0))
        assert result.stats.get("coherence.migrations", 0) == 0

    def test_remote_reads_flush(self):
        sim = MultiCoreSecPBSimulator(2, get_scheme("cobcm"))
        result = sim.run(traces(2, share=0.4))
        assert result.stats.get("coherence.read_flushes", 0) > 0

    def test_more_sharing_is_not_faster(self):
        """Migration and flush traffic must cost something."""
        low = MultiCoreSecPBSimulator(4, get_scheme("cm")).run(
            traces(4, share=0.0)
        )
        high = MultiCoreSecPBSimulator(4, get_scheme("cm")).run(
            traces(4, share=0.5)
        )
        # Not a strict inequality benchmark: the shared region is smaller
        # and hotter, but coherence stats must reflect traffic.
        assert high.stats.get("coherence.migrations", 0) > 0
        assert low.stats.get("coherence.migrations", 0) == 0


class TestSharedEngineContention:
    def test_eager_schemes_contend_on_shared_bmt(self):
        """With the MC's single BMT engine shared, more cores mean more
        queueing for eager schemes — CM's multi-core scaling cost."""
        single = MultiCoreSecPBSimulator(1, get_scheme("cm")).run(traces(1, num_ops=2000))
        quad = MultiCoreSecPBSimulator(4, get_scheme("cm")).run(traces(4, num_ops=2000))
        per_core_single = single.cycles
        per_core_quad = quad.cycles  # same ops per core, same trace length
        assert per_core_quad > per_core_single

    def test_lazy_scheme_scales_better_than_eager(self):
        cm_1 = MultiCoreSecPBSimulator(1, get_scheme("cm")).run(traces(1, num_ops=2000))
        cm_4 = MultiCoreSecPBSimulator(4, get_scheme("cm")).run(traces(4, num_ops=2000))
        cobcm_1 = MultiCoreSecPBSimulator(1, get_scheme("cobcm")).run(traces(1, num_ops=2000))
        cobcm_4 = MultiCoreSecPBSimulator(4, get_scheme("cobcm")).run(traces(4, num_ops=2000))
        cm_scaling = cm_4.cycles / cm_1.cycles
        cobcm_scaling = cobcm_4.cycles / max(cobcm_1.cycles, 1.0)
        assert cobcm_scaling < cm_scaling


class TestWarmup:
    """The measured-region protocol (PR 1) applied to the lockstep run.

    Per-core cycles, instructions and every shared counter must cover
    only the post-warmup region — the multi-core mirror of the
    single-core snapshot/subtract discipline.
    """

    def test_warmup_frac_validated(self):
        sim = MultiCoreSecPBSimulator(2, get_scheme("cm"))
        for bad in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError, match="warmup_frac"):
                sim.run(traces(2), warmup_frac=bad)

    def test_zero_warmup_matches_default(self):
        full = MultiCoreSecPBSimulator(2, get_scheme("cm")).run(traces(2))
        explicit = MultiCoreSecPBSimulator(2, get_scheme("cm")).run(
            traces(2), warmup_frac=0.0
        )
        assert explicit == full

    def test_warmup_excludes_leading_region(self):
        full = MultiCoreSecPBSimulator(2, get_scheme("cm")).run(traces(2))
        warm = MultiCoreSecPBSimulator(2, get_scheme("cm")).run(
            traces(2), warmup_frac=0.3
        )
        assert warm.cycles < full.cycles
        assert warm.instructions < full.instructions
        assert all(
            w < f
            for w, f in zip(warm.per_core_cycles, full.per_core_cycles)
        )

    def test_stats_cover_measured_region_only(self):
        full = MultiCoreSecPBSimulator(2, get_scheme("cm")).run(traces(2))
        warm = MultiCoreSecPBSimulator(2, get_scheme("cm")).run(
            traces(2), warmup_frac=0.5
        )
        assert warm.stats["instructions"] == warm.instructions
        for key in ("secpb.writes", "bmt.root_updates"):
            if key in full.stats:
                assert warm.stats.get(key, 0.0) <= full.stats[key]

    def test_warmup_deterministic(self):
        a = MultiCoreSecPBSimulator(2, get_scheme("cm")).run(
            traces(2), warmup_frac=0.25
        )
        b = MultiCoreSecPBSimulator(2, get_scheme("cm")).run(
            traces(2), warmup_frac=0.25
        )
        assert a == b

    def test_bbb_warmup_runs(self):
        result = MultiCoreSecPBSimulator(2, None).run(
            traces(2), warmup_frac=0.2
        )
        assert result.cycles > 0
