"""Byte-identical golden-output equivalence of the optimized simulator.

The checked-in ``tests/data/golden_*.json`` files were produced by the
pre-optimization simulator (``tools/regen_golden.py``).  These tests
re-run the same sweeps — all six schemes plus the insecure BBB baseline,
serially and through a 4-worker process pool — and require the canonical
JSON serialization to match the goldens **byte for byte**.  Any drift,
down to the last ulp of a float counter, is a regression of the hot-path
work's central guarantee.
"""

from __future__ import annotations

import pytest

from . import golden


def _golden_bytes(filename: str) -> str:
    path = golden.GOLDEN_DIR / filename
    if not path.exists():
        pytest.fail(
            f"missing golden file {path}; run tools/regen_golden.py "
            "(only legitimate when simulator semantics intentionally change)"
        )
    return path.read_text()


class TestGoldenEquivalence:
    def test_table4_serial_matches_golden(self):
        assert golden.build_table4(jobs=1) == _golden_bytes("golden_table4.json")

    def test_table4_parallel_matches_golden(self):
        # --jobs 4: the pool path must serialize to the very same bytes.
        assert golden.build_table4(jobs=4) == _golden_bytes("golden_table4.json")

    def test_fig8_serial_matches_golden(self):
        assert golden.build_fig8(jobs=1) == _golden_bytes("golden_fig8.json")

    def test_fig8_parallel_matches_golden(self):
        assert golden.build_fig8(jobs=4) == _golden_bytes("golden_fig8.json")

    def test_per_scheme_runs_match_golden(self):
        # Full SimulationResult per scheme + BBB, including every raw
        # counter — the strictest artifact: cycles, PPTI/NWPE, cache and
        # metadata-cache hit/miss counts, drain/backflow accounting.
        assert golden.build_runs() == _golden_bytes("golden_runs.json")
