"""Security-property tests: confidentiality and freshness at the NVM level.

These test the threat model directly: the physical attacker sees only
NVM contents (ciphertext + metadata), so the ciphertext must leak nothing
usable — no plaintext equality patterns across blocks or versions, no
low-entropy structure — and freshness must hold (no OTP reuse).
"""

import collections

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.engine import SecureMemory


def blk(i):
    return bytes([i % 256]) * 64


class TestCiphertextIndistinguishability:
    def test_same_plaintext_different_blocks_differs(self):
        """Address-bound pads: identical plaintexts at different addresses
        produce unrelated ciphertexts (no ECB-style patterns)."""
        memory = SecureMemory(atomic=True)
        memory.persist_block(0, blk(7))
        memory.persist_block(1, blk(7))
        a = memory.nvm.read_block(0)
        b = memory.nvm.read_block(1)
        assert a != b
        # No shared 8-byte runs either.
        chunks_a = {a[i : i + 8] for i in range(0, 64, 8)}
        chunks_b = {b[i : i + 8] for i in range(0, 64, 8)}
        assert not chunks_a & chunks_b

    def test_same_plaintext_rewritten_differs(self):
        """Counter freshness: re-persisting the same value yields a new
        ciphertext (an observer cannot detect 'value unchanged')."""
        memory = SecureMemory(atomic=True)
        memory.persist_block(5, blk(9))
        first = memory.nvm.read_block(5)
        memory.persist_block(5, blk(9))
        assert memory.nvm.read_block(5) != first

    def test_low_entropy_plaintext_yields_high_entropy_ciphertext(self):
        """An all-zero block must not leave structure in the NVM image."""
        memory = SecureMemory(atomic=True)
        memory.persist_block(3, bytes(64))
        ciphertext = memory.nvm.read_block(3)
        # At least ~50 distinct byte values in 64 bytes would be suspicious
        # by chance; require reasonable spread instead of runs of a value.
        counts = collections.Counter(ciphertext)
        assert max(counts.values()) <= 4
        assert ciphertext != bytes(64)

    @given(st.binary(min_size=64, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_xor_of_versions_never_reveals_plaintext_diff_of_zero(self, payload):
        """Because the pad changes every version, the XOR of two stored
        versions of the *same* plaintext is never the zero block (which
        would reveal 'unchanged')."""
        memory = SecureMemory(atomic=True)
        memory.persist_block(0, payload)
        v1 = memory.nvm.read_block(0)
        memory.persist_block(0, payload)
        v2 = memory.nvm.read_block(0)
        assert bytes(x ^ y for x, y in zip(v1, v2)) != bytes(64)


class TestPadFreshness:
    def test_no_nonce_reuse_over_many_writes(self):
        """Every OTP generation across a busy page uses a fresh nonce."""
        memory = SecureMemory(atomic=True)
        seen = set()
        generate = memory.engine.otp.generate
        pads = []

        def spy(addr, major, minor):
            pads.append((addr, major, minor))
            return generate(addr, major, minor)

        memory.engine.otp.generate = spy
        for i in range(300):
            memory.persist_block(i % 6, blk(i))
        # Encryption-path nonces (ignoring decrypt-side regenerations, the
        # even indices): each (addr, major, minor) pair appears at most
        # twice (once encrypt, once later decrypt during re-encryption).
        counts = collections.Counter(pads)
        assert max(counts.values()) <= 2

    def test_overflow_changes_all_pads_in_page(self):
        """After a major-counter bump, every block's ciphertext changed."""
        from repro.security.counters import MINOR_LIMIT

        memory = SecureMemory(atomic=True)
        memory.persist_block(0, blk(1))
        memory.persist_block(2, blk(2))
        before_0 = memory.nvm.read_block(0)
        before_2 = memory.nvm.read_block(2)
        for i in range(MINOR_LIMIT + 1):
            memory.persist_block(1, blk(i))
        assert memory.nvm.read_block(0) != before_0
        assert memory.nvm.read_block(2) != before_2
        # And both still decrypt correctly.
        assert memory.recover_block(0).plaintext == blk(1)
        assert memory.recover_block(2).plaintext == blk(2)
