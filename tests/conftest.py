"""Shared fixtures for the SecPB reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.schemes import SCHEMES, SPECTRUM_ORDER
from repro.sim.config import SystemConfig
from repro.workloads.synthetic import zipf_trace


@pytest.fixture
def config():
    """The paper's default configuration (Table I)."""
    return SystemConfig()


@pytest.fixture
def small_config():
    """A small SecPB configuration for fast structural tests."""
    import dataclasses

    base = SystemConfig()
    return dataclasses.replace(
        base, secpb=dataclasses.replace(base.secpb, entries=8)
    )


@pytest.fixture(params=SPECTRUM_ORDER)
def scheme(request):
    """Parameterized over all six schemes, laziest first."""
    return SCHEMES[request.param]


@pytest.fixture
def write_heavy_trace():
    """A small, deterministic write-heavy trace."""
    return zipf_trace(
        num_ops=4000,
        working_set_blocks=2000,
        zipf_alpha=0.6,
        store_fraction=0.7,
        burst_length=2,
        mean_gap=2.0,
        seed=7,
        name="write-heavy",
    )


def block(byte: int) -> bytes:
    """A 64-byte block filled with one byte value."""
    return bytes([byte % 256]) * 64


@pytest.fixture
def make_block():
    return block
