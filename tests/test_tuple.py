"""Tests for repro.security.tuple — the PLP crash-recoverability invariants."""

import pytest

from repro.security.tuple import (
    ALL_COMPONENTS,
    InvariantViolation,
    TupleComponent,
    TupleState,
    audit_observable_state,
    check_atomicity,
    check_persist_order,
)


def complete_tuple(store_id, when):
    state = TupleState(store_id, block_addr=store_id * 64)
    for component in ALL_COMPONENTS:
        state.persist(component, when)
    return state


class TestTupleState:
    def test_initially_incomplete(self):
        state = TupleState(0, 0)
        assert not state.complete
        assert state.completion_time is None
        assert set(state.missing_components()) == set(ALL_COMPONENTS)

    def test_complete_after_all_components(self):
        state = complete_tuple(0, when=5.0)
        assert state.complete
        assert state.completion_time == 5.0
        assert state.missing_components() == []

    def test_completion_time_is_last_component(self):
        state = TupleState(0, 0)
        state.persist(TupleComponent.CIPHERTEXT, 1.0)
        state.persist(TupleComponent.COUNTER, 2.0)
        state.persist(TupleComponent.MAC, 7.0)
        state.persist(TupleComponent.BMT_ROOT, 3.0)
        assert state.completion_time == 7.0

    def test_repersist_cannot_go_backwards(self):
        state = TupleState(0, 0)
        state.persist(TupleComponent.MAC, 5.0)
        with pytest.raises(ValueError, match="re-persisted earlier"):
            state.persist(TupleComponent.MAC, 3.0)


class TestAtomicityInvariant:
    def test_accepts_complete_tuples(self):
        check_atomicity([complete_tuple(0, 1.0), complete_tuple(1, 2.0)])

    def test_rejects_partial_tuple(self):
        """Invariant 1 (PLP): a persisted store with any unpersisted tuple
        component is unrecoverable."""
        partial = TupleState(3, 0xC0)
        partial.persist(TupleComponent.CIPHERTEXT, 1.0)
        with pytest.raises(InvariantViolation, match="store 3"):
            check_atomicity([partial])

    def test_violation_names_missing_components(self):
        partial = TupleState(0, 0)
        partial.persist(TupleComponent.CIPHERTEXT, 1.0)
        partial.persist(TupleComponent.COUNTER, 1.0)
        with pytest.raises(InvariantViolation, match="M, R"):
            check_atomicity([partial])


class TestPersistOrderInvariant:
    def test_accepts_ordered_completions(self):
        check_persist_order([complete_tuple(0, 1.0), complete_tuple(1, 2.0)])

    def test_accepts_simultaneous_completions(self):
        check_persist_order([complete_tuple(0, 1.0), complete_tuple(1, 1.0)])

    def test_rejects_inverted_completions(self):
        """Invariant 2 (PLP): alpha1 -> alpha2 requires tuple1 -> tuple2."""
        with pytest.raises(InvariantViolation, match="persist-order"):
            check_persist_order([complete_tuple(0, 5.0), complete_tuple(1, 2.0)])

    def test_checks_atomicity_first(self):
        with pytest.raises(InvariantViolation):
            check_persist_order([TupleState(0, 0)])


class TestAudit:
    def test_audit_ok(self):
        ok, reason = audit_observable_state([complete_tuple(0, 1.0)])
        assert ok and reason is None

    def test_audit_reports_reason(self):
        ok, reason = audit_observable_state([TupleState(0, 0)])
        assert not ok
        assert "missing" in reason
