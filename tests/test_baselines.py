"""Tests for repro.baselines — BBB and SP (PLP strict persistency)."""

import pytest

from repro.baselines.bbb import PlaintextPersistentSystem, make_bbb_simulator, run_bbb
from repro.baselines.strict import StrictPersistencySimulator, run_sp
from repro.core.schemes import get_scheme
from repro.core.simulator import run_scheme
from repro.workloads.synthetic import zipf_trace


@pytest.fixture(scope="module")
def trace():
    return zipf_trace(
        num_ops=3000,
        working_set_blocks=800,
        zipf_alpha=0.7,
        store_fraction=0.5,
        burst_length=2,
        mean_gap=3.0,
        seed=11,
        name="baseline-unit",
    )


class TestBBB:
    def test_run_bbb(self, trace):
        result = run_bbb(trace)
        assert result.scheme == "bbb"
        assert result.cycles > 0

    def test_make_bbb_simulator_has_no_scheme(self):
        assert make_bbb_simulator().scheme is None

    def test_plaintext_system_capacity_handling(self):
        system = PlaintextPersistentSystem()
        for i in range(100):
            system.store(i, bytes([i]) * 64)
        system.crash()
        recovered = system.recover()
        assert len(recovered) == 100
        assert recovered[42] == bytes([42]) * 64

    def test_plaintext_store_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            PlaintextPersistentSystem().store(0, b"x")


class TestStrictPersistency:
    def test_sp_runs(self, trace):
        result = run_sp(trace)
        assert result.scheme == "sp"
        assert result.cycles > 0
        assert result.stats["bmt.root_updates"] == trace.num_stores

    def test_sp_slower_than_bbb(self, trace):
        """SP pays a serialized tuple update at the MC per store."""
        sp = run_sp(trace)
        bbb = run_bbb(trace)
        assert sp.cycles > bbb.cycles

    def test_sp_slower_than_secpb_cm(self, trace):
        """The paper's premise: SecPB beats SP even for eager schemes on
        write-heavy workloads, because SecPB coalesces metadata updates."""
        sp = run_sp(trace)
        cm = run_scheme(trace, get_scheme("cm"))
        assert sp.cycles > cm.cycles

    def test_bmf_reduces_sp_overhead(self, trace):
        """sp_dbmf < sp (Fig. 9)."""
        full = run_sp(trace)
        dbmf = run_sp(trace, bmt_levels_fn=lambda page: 2)
        assert dbmf.cycles < full.cycles

    def test_sp_warmup_excludes_cycles(self, trace):
        full = StrictPersistencySimulator().run(trace)
        measured = StrictPersistencySimulator().run(trace, warmup_frac=0.5)
        assert measured.cycles < full.cycles
        assert measured.instructions < full.instructions

    def test_sp_invalid_warmup_rejected(self, trace):
        with pytest.raises(ValueError):
            StrictPersistencySimulator().run(trace, warmup_frac=1.5)

    def test_sp_deterministic(self, trace):
        assert run_sp(trace).cycles == run_sp(trace).cycles
