"""Tests for the full design-space enumeration (beyond the paper's six)."""

import pytest

from repro.core.schemes import (
    ALL_STEPS,
    SCHEMES,
    STEP_DEPENDENCIES,
    MetadataStep,
    enumerate_valid_schemes,
)
from repro.core.crash import SecurePersistentSystem
from repro.core.simulator import run_scheme
from repro.energy.battery import estimate_scheme
from repro.workloads.synthetic import zipf_trace


@pytest.fixture(scope="module")
def space():
    return enumerate_valid_schemes()


class TestEnumeration:
    def test_exactly_nine_valid_schemes(self, space):
        """Five steps under Fig. 4's dependency order admit exactly nine
        dependency-closed early sets."""
        assert len(space) == 9

    def test_all_schemes_are_dependency_valid(self, space):
        for scheme in space:
            for step in scheme.early_steps:
                assert STEP_DEPENDENCIES[step] <= scheme.early_steps

    def test_paper_schemes_are_included_by_name(self, space):
        names = {s.name for s in space}
        assert set(SCHEMES) <= names

    def test_three_novel_schemes(self, space):
        novel = {s.name for s in space} - set(SCHEMES)
        assert novel == {"early_cb", "early_cox", "early_coxm"}

    def test_novel_scheme_definitions(self, space):
        by_name = {s.name: s for s in space}
        assert by_name["early_cb"].early_steps == {
            MetadataStep.COUNTER,
            MetadataStep.BMT_ROOT,
        }
        assert by_name["early_cox"].early_steps == {
            MetadataStep.COUNTER,
            MetadataStep.OTP,
            MetadataStep.CIPHERTEXT,
        }
        assert by_name["early_coxm"].early_steps == {
            MetadataStep.COUNTER,
            MetadataStep.OTP,
            MetadataStep.CIPHERTEXT,
            MetadataStep.MAC,
        }

    def test_laziest_first_ordering(self, space):
        laziness = [s.laziness for s in space]
        assert laziness == sorted(laziness, reverse=True)

    def test_enumeration_is_deterministic(self):
        a = [s.name for s in enumerate_valid_schemes()]
        b = [s.name for s in enumerate_valid_schemes()]
        assert a == b


class TestNovelSchemesWork:
    @pytest.fixture(scope="class")
    def novel(self):
        return [
            s for s in enumerate_valid_schemes() if s.name.startswith("early_")
        ]

    def test_timing_simulator_accepts_novel_schemes(self, novel):
        trace = zipf_trace(1500, 300, store_fraction=0.6, burst_length=2, seed=41)
        for scheme in novel:
            result = run_scheme(trace, scheme)
            assert result.cycles > 0

    def test_battery_model_accepts_novel_schemes(self, novel):
        for scheme in novel:
            estimate = estimate_scheme(scheme)
            assert estimate.supercap_mm3 > 0

    def test_crash_recovery_with_novel_schemes(self, novel):
        for scheme in novel:
            system = SecurePersistentSystem(scheme)
            for i in range(40):
                system.store(i, bytes([i]) * 64)
            system.crash()
            assert system.recover().ok, scheme.name

    def test_early_cb_battery_between_cm_and_bcm(self):
        """early_cb persists the BMT eagerly but not the OTP, so its
        battery need sits between CM's and BCM's."""
        by_name = {s.name: s for s in enumerate_valid_schemes()}
        cb = estimate_scheme(by_name["early_cb"]).supercap_mm3
        cm = estimate_scheme(by_name["cm"]).supercap_mm3
        bcm = estimate_scheme(by_name["bcm"]).supercap_mm3
        assert cm <= cb <= bcm
