"""Tests for repro.analysis.report — table formatting."""

import pytest

from repro.analysis.report import (
    fmt,
    format_table,
    paper_vs_measured,
    pct,
    ratio,
    series_table,
)


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].split() == ["1", "2"]

    def test_title(self):
        out = format_table(["a"], [["x"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_column_count_validated(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_columns_align(self):
        out = format_table(["name", "v"], [["long-name", "1"], ["x", "22"]])
        lines = out.splitlines()
        assert lines[2].index("1") == lines[3].index("22")


class TestFormatters:
    def test_pct(self):
        assert pct(12.34) == "12.3%"
        assert pct(12.34, digits=2) == "12.34%"

    def test_ratio(self):
        assert ratio(1.5) == "1.50x"

    def test_fmt(self):
        assert fmt(3.14159, 3) == "3.142"


class TestPaperVsMeasured:
    def test_both_columns_present(self):
        out = paper_vs_measured({"cm": 70.0}, {"cm": 71.3})
        assert "70.00%" in out
        assert "71.30%" in out

    def test_missing_paper_value_dashes(self):
        out = paper_vs_measured({"new": 1.0}, {})
        assert "-" in out

    def test_order_respected(self):
        out = paper_vs_measured(
            {"b": 1.0, "a": 2.0}, {}, order=["a", "b"]
        )
        lines = out.splitlines()
        assert lines[2].startswith("a")


class TestSeriesTable:
    def test_grid(self):
        out = series_table(
            {"bench1": {"cm": 1.5, "m": 2.0}},
            col_order=["cm", "m"],
        )
        assert "bench1" in out
        assert "1.50" in out
        assert "2.00" in out

    def test_missing_cell_dashes(self):
        out = series_table({"b": {"x": 1.0}}, col_order=["x", "y"])
        assert "-" in out
