"""Tests for repro.apps — persistent data structures with crash recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.hashmap import PersistentHashMap
from repro.apps.log import PersistentLog
from repro.apps.queue import PersistentQueue
from repro.core.crash import SecurePersistentSystem
from repro.core.schemes import SPECTRUM_ORDER, get_scheme


class TestPersistentLog:
    def test_append_and_iterate(self):
        log = PersistentLog()
        log.append(b"alpha")
        log.append(b"bravo" * 20)  # spans blocks
        assert len(log) == 2
        assert list(log.records()) == [b"alpha", b"bravo" * 20]

    def test_empty_record_rejected(self):
        with pytest.raises(ValueError):
            PersistentLog().append(b"")

    def test_full_log_rejected(self):
        log = PersistentLog(capacity_blocks=1)
        log.append(b"x" * 50)
        with pytest.raises(ValueError, match="full"):
            log.append(b"y" * 50)

    def test_crash_recovery_roundtrip(self):
        log = PersistentLog()
        payloads = [f"record-{i}".encode() * (i % 3 + 1) for i in range(30)]
        for payload in payloads:
            log.append(payload)
        log.crash()
        recovered = PersistentLog.recover(log.system)
        assert recovered == payloads

    def test_recovery_detects_tampering(self):
        log = PersistentLog()
        log.append(b"genuine")
        log.crash()
        log.system.memory.tamper_data(log.data_base, b"\xff" * 64)
        with pytest.raises(RuntimeError, match="unrecoverable"):
            PersistentLog.recover(log.system)

    def test_empty_log_recovers_empty(self):
        log = PersistentLog()
        log.crash()
        assert PersistentLog.recover(log.system) == []

    @pytest.mark.parametrize("scheme_name", ["nogap", "bcm", "cobcm"])
    def test_recovery_under_multiple_schemes(self, scheme_name):
        log = PersistentLog(scheme=get_scheme(scheme_name))
        for i in range(10):
            log.append(bytes([i + 1]) * 10)
        log.crash()
        assert len(PersistentLog.recover(log.system)) == 10


class TestPersistentHashMap:
    def test_put_get_delete(self):
        table = PersistentHashMap(buckets=16)
        table.put(b"k1", b"v1")
        table.put(b"k2", b"v2")
        assert table.get(b"k1") == b"v1"
        assert len(table) == 2
        assert table.delete(b"k1")
        assert table.get(b"k1") is None
        assert not table.delete(b"k1")
        assert len(table) == 1

    def test_update_in_place(self):
        table = PersistentHashMap(buckets=8)
        table.put(b"k", b"v1")
        table.put(b"k", b"v2")
        assert table.get(b"k") == b"v2"
        assert len(table) == 1

    def test_collisions_probe_linearly(self):
        table = PersistentHashMap(buckets=4)
        for i in range(4):
            table.put(bytes([i + 1]), bytes([i + 65]))
        for i in range(4):
            assert table.get(bytes([i + 1])) == bytes([i + 65])

    def test_full_table_raises(self):
        table = PersistentHashMap(buckets=2)
        table.put(b"a", b"1")
        table.put(b"b", b"2")
        with pytest.raises(ValueError, match="full"):
            table.put(b"c", b"3")

    def test_tombstone_slots_reused(self):
        table = PersistentHashMap(buckets=2)
        table.put(b"a", b"1")
        table.put(b"b", b"2")
        table.delete(b"a")
        table.put(b"c", b"3")  # reuses the tombstone
        assert table.get(b"c") == b"3"
        assert table.get(b"b") == b"2"

    def test_size_limits_enforced(self):
        table = PersistentHashMap()
        with pytest.raises(ValueError):
            table.put(b"", b"v")
        with pytest.raises(ValueError):
            table.put(b"x" * 24, b"v")
        with pytest.raises(ValueError):
            table.put(b"k", b"v" * 33)

    def test_crash_recovery_roundtrip(self):
        table = PersistentHashMap(buckets=64)
        expected = {}
        for i in range(40):
            key = f"key-{i}".encode()
            value = f"value-{i}".encode()
            table.put(key, value)
            expected[key] = value
        for i in range(0, 40, 3):
            key = f"key-{i}".encode()
            table.delete(key)
            del expected[key]
        table.crash()
        assert PersistentHashMap.recover(table.system, buckets=64) == expected

    @given(
        st.lists(
            st.tuples(
                st.binary(min_size=1, max_size=8),
                st.binary(min_size=0, max_size=16),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_dict_semantics_through_crash(self, ops):
        """Property: after any put/delete sequence and a crash, recovery
        equals an in-memory dict driven by the same operations."""
        table = PersistentHashMap(buckets=128)
        model = {}
        for key, value, is_delete in ops:
            if is_delete:
                assert table.delete(key) == (key in model)
                model.pop(key, None)
            else:
                table.put(key, value)
                model[key] = value
        table.crash()
        assert PersistentHashMap.recover(table.system, buckets=128) == model


class TestPersistentQueue:
    def test_fifo_order(self):
        queue = PersistentQueue(slots=8)
        for i in range(5):
            queue.enqueue(bytes([i + 1]))
        assert [queue.dequeue() for _ in range(5)] == [
            bytes([i + 1]) for i in range(5)
        ]

    def test_wraparound(self):
        queue = PersistentQueue(slots=4)
        for i in range(4):
            queue.enqueue(bytes([i + 1]))
        queue.dequeue()
        queue.dequeue()
        queue.enqueue(b"\x05")
        queue.enqueue(b"\x06")
        assert len(queue) == 4
        assert queue.dequeue() == b"\x03"

    def test_full_and_empty_errors(self):
        queue = PersistentQueue(slots=1)
        queue.enqueue(b"x")
        with pytest.raises(ValueError, match="full"):
            queue.enqueue(b"y")
        queue.dequeue()
        with pytest.raises(IndexError, match="empty"):
            queue.dequeue()

    def test_oversize_item_rejected(self):
        with pytest.raises(ValueError):
            PersistentQueue().enqueue(b"z" * 64)

    def test_crash_recovery_reflects_acknowledged_ops(self):
        queue = PersistentQueue(slots=16)
        for i in range(10):
            queue.enqueue(bytes([i + 1]))
        for _ in range(4):
            queue.dequeue()
        queue.crash()
        head, tail, items = PersistentQueue.recover(queue.system, slots=16)
        assert (head, tail) == (4, 10)
        assert items == [bytes([i + 1]) for i in range(4, 10)]

    def test_shared_system_multiple_structures(self):
        """Log + map + queue coexisting in one persistent address space."""
        system = SecurePersistentSystem(get_scheme("cobcm"))
        log = PersistentLog(system=system, base_block=0, capacity_blocks=32)
        table = PersistentHashMap(buckets=16, system=system, base_block=64)
        queue = PersistentQueue(slots=8, system=system, base_block=128)
        log.append(b"hello")
        table.put(b"k", b"v")
        queue.enqueue(b"item")
        system.crash()
        assert PersistentLog.recover(system, base_block=0) == [b"hello"]
        assert PersistentHashMap.recover(system, buckets=16, base_block=64) == {
            b"k": b"v"
        }
        _, _, items = PersistentQueue.recover(system, slots=8, base_block=128)
        assert items == [b"item"]
