"""Integration tests for repro.analysis.experiments — the paper harness.

These run the real experiment entry points at reduced scale and check the
*shape* the paper reports: scheme orderings, battery orderings, crossover
structure.  The full-scale numbers live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.analysis import paper_values
from repro.analysis.experiments import (
    EXPERIMENTS,
    run_experiment,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table4,
    run_table5,
    run_table6,
)

FAST = dict(num_ops=6000, benchmarks=["gamess", "povray", "hmmer", "leslie3d"])


@pytest.fixture(scope="module")
def table4():
    return run_table4(**FAST)


class TestRegistry:
    def test_every_paper_artifact_has_an_entry(self):
        assert set(EXPERIMENTS) == {
            "table4",
            "fig6",
            "table5",
            "table6",
            "fig7",
            "fig8",
            "fig9",
        }

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("table99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("table5")
        assert result.by_label()["cobcm"].supercap_mm3 > 0


class TestTable4Shape:
    def test_all_schemes_reported(self, table4):
        assert set(table4.mean_overhead_pct) == {
            "cobcm",
            "obcm",
            "bcm",
            "cm",
            "m",
            "nogap",
        }

    def test_spectrum_ordering(self, table4):
        mean = table4.mean_overhead_pct
        assert mean["cobcm"] <= mean["bcm"] + 1e-6
        assert mean["bcm"] <= mean["cm"] + 1e-6
        assert mean["cm"] <= mean["m"] + 1e-6
        assert mean["m"] <= mean["nogap"] + 1e-6

    def test_lazy_schemes_near_baseline(self, table4):
        assert table4.mean_overhead_pct["cobcm"] < 30

    def test_eager_schemes_pay_heavily(self, table4):
        assert table4.mean_overhead_pct["nogap"] > 100

    def test_paper_values_attached(self, table4):
        assert table4.paper_mean_pct["cobcm"] == 1.3
        assert table4.paper_mean_pct["nogap"] == 118.4

    def test_render_contains_measured_and_paper(self, table4):
        out = table4.render()
        assert "measured" in out
        assert "paper" in out
        assert "gamess" in out

    def test_per_benchmark_detail_present(self, table4):
        assert set(table4.per_benchmark_pct) == set(FAST["benchmarks"])


class TestTable5Shape:
    def test_rows_and_ordering(self):
        table = run_table5()
        by_label = table.by_label()
        assert by_label["cobcm"].supercap_mm3 > by_label["cm"].supercap_mm3
        assert by_label["cm"].supercap_mm3 > by_label["nogap"].supercap_mm3
        assert by_label["s_eadr"].supercap_mm3 > 100 * by_label["cobcm"].supercap_mm3
        assert by_label["bbb"].supercap_mm3 < by_label["nogap"].supercap_mm3

    def test_render(self):
        out = run_table5().render()
        assert "s_eadr" in out and "SuperCap" in out


class TestTable6Shape:
    def test_monotone_in_size(self):
        table = run_table6()
        sizes = sorted(table.cobcm)
        volumes = [table.cobcm[s].supercap_mm3 for s in sizes]
        assert volumes == sorted(volumes)

    def test_cobcm_needs_more_than_nogap(self):
        table = run_table6()
        for size in table.cobcm:
            assert (
                table.cobcm[size].supercap_mm3 > table.nogap[size].supercap_mm3
            )

    def test_render(self):
        assert "entries" in run_table6().render()


class TestFig7Fig8Shape:
    def test_overhead_decreases_with_size(self):
        result = run_fig7(
            sizes=(8, 64, 512), num_ops=6000, benchmarks=["povray", "hmmer"]
        )
        assert result.overhead_pct[8] > result.overhead_pct[512]

    def test_bmt_updates_decrease_with_size(self):
        result = run_fig7(
            sizes=(8, 512), num_ops=6000, benchmarks=["povray", "hmmer"]
        )
        assert (
            result.bmt_updates_vs_secwt_pct[8]
            > result.bmt_updates_vs_secwt_pct[512]
        )

    def test_fig8_all_schemes_below_secwt(self):
        result = run_fig8(num_ops=5000, benchmarks=["povray", "hmmer"])
        for scheme, pct_updates in result.updates_vs_secwt_pct.items():
            assert 0 < pct_updates < 100, scheme

    def test_renders(self):
        r7 = run_fig7(sizes=(8, 32), num_ops=4000, benchmarks=["povray"])
        assert "entries" in r7.render()
        r8 = run_fig8(num_ops=4000, benchmarks=["povray"])
        assert "sec_wt" in r8.render()


class TestFig9Shape:
    @pytest.fixture(scope="class")
    def fig9(self):
        return run_fig9(num_ops=6000, benchmarks=["gamess", "povray", "hmmer"])

    def test_dbmf_beats_sbmf_beats_full(self, fig9):
        mean = fig9.mean_overhead_pct
        assert mean["cm_dbmf"] < mean["cm_sbmf"] < mean["cm"]

    def test_secpb_bmf_beats_sp_bmf(self, fig9):
        """Fig. 9's highlight: cm_sbmf outperforms even sp_dbmf."""
        mean = fig9.mean_overhead_pct
        assert mean["cm_dbmf"] < mean["sp_dbmf"]
        assert mean["cm_sbmf"] < mean["sp_dbmf"]

    def test_sp_dbmf_beats_sp_sbmf(self, fig9):
        mean = fig9.mean_overhead_pct
        assert mean["sp_dbmf"] < mean["sp_sbmf"]

    def test_paper_targets_attached(self, fig9):
        assert fig9.paper_mean_pct == paper_values.FIG9_OVERHEAD_PCT
