"""Consistency checks on the transcribed paper values themselves."""

from repro.analysis import paper_values
from repro.core.schemes import SPECTRUM_ORDER
from repro.sim.config import SECPB_SIZE_SWEEP


class TestTranscriptionConsistency:
    def test_table4_covers_all_schemes(self):
        assert set(paper_values.TABLE4_SLOWDOWN_PCT) == set(SPECTRUM_ORDER)

    def test_table4_ordering_matches_spectrum(self):
        """The paper's own numbers order by eagerness."""
        values = [
            paper_values.TABLE4_SLOWDOWN_PCT[name] for name in SPECTRUM_ORDER
        ]
        assert values == sorted(values)

    def test_table5_supercap_livthin_ratio_is_100(self):
        """SuperCap and Li-Thin volumes must differ by the density ratio."""
        for name, supercap in paper_values.TABLE5_SUPERCAP_MM3.items():
            li_thin = paper_values.TABLE5_LI_THIN_MM3[name]
            assert 0.4 < supercap / (100 * li_thin) < 2.7, name

    def test_table5_battery_orders_by_laziness(self):
        values = [
            paper_values.TABLE5_SUPERCAP_MM3[name] for name in SPECTRUM_ORDER
        ]
        assert values == sorted(values, reverse=True)

    def test_table6_covers_the_size_sweep(self):
        assert set(paper_values.TABLE6_COBCM_SUPERCAP_MM3) == set(SECPB_SIZE_SWEEP)
        assert set(paper_values.TABLE6_NOGAP_SUPERCAP_MM3) == set(SECPB_SIZE_SWEEP)

    def test_table6_monotone_in_size(self):
        for table in (
            paper_values.TABLE6_COBCM_SUPERCAP_MM3,
            paper_values.TABLE6_NOGAP_SUPERCAP_MM3,
        ):
            sizes = sorted(table)
            values = [table[s] for s in sizes]
            assert values == sorted(values)

    def test_table6_agrees_with_table5_at_32_entries(self):
        assert (
            paper_values.TABLE6_COBCM_SUPERCAP_MM3[32]
            == paper_values.TABLE5_SUPERCAP_MM3["cobcm"]
        )
        assert (
            paper_values.TABLE6_NOGAP_SUPERCAP_MM3[32]
            == paper_values.TABLE5_SUPERCAP_MM3["nogap"]
        )

    def test_fig9_orderings(self):
        fig9 = paper_values.FIG9_OVERHEAD_PCT
        assert fig9["cm_dbmf"] < fig9["cm_sbmf"]
        assert fig9["sp_dbmf"] < fig9["sp_sbmf"]
        assert fig9["cm_sbmf"] < fig9["sp_dbmf"]  # the paper's highlight

    def test_headline_ratios_positive(self):
        assert paper_values.SEADR_TO_COBCM_BATTERY_RATIO > 100
        assert paper_values.EADR_TO_BBB_BATTERY_RATIO > 100

    def test_benchmark_stats_present(self):
        assert paper_values.BENCHMARK_STATS["gamess"]["ppti"] == 47.4
        assert paper_values.BENCHMARK_STATS["povray"]["nwpe"] == 17.6
