"""Tests for repro.core.schemes — the design spectrum of Fig. 4 / Table II."""

import pytest

from repro.core.schemes import (
    ALL_STEPS,
    BCM,
    CM,
    COBCM,
    M,
    NOGAP,
    OBCM,
    SCHEMES,
    SPECTRUM_ORDER,
    STEP_DEPENDENCIES,
    VALUE_DEPENDENT_STEPS,
    VALUE_INDEPENDENT_STEPS,
    MetadataStep,
    Scheme,
    get_scheme,
)
from repro.core.secpb import fields_for_scheme


class TestRegistry:
    def test_six_schemes(self):
        assert len(SCHEMES) == 6
        assert set(SCHEMES) == {"nogap", "m", "cm", "bcm", "obcm", "cobcm"}

    def test_lookup_case_insensitive(self):
        assert get_scheme("NoGap") is NOGAP
        assert get_scheme("COBCM") is COBCM

    def test_unknown_scheme_raises_with_valid_names(self):
        with pytest.raises(KeyError, match="cobcm"):
            get_scheme("unknown")

    def test_spectrum_order_is_laziest_first(self):
        laziness = [SCHEMES[name].laziness for name in SPECTRUM_ORDER]
        assert laziness == sorted(laziness, reverse=True)
        assert laziness == [5, 4, 3, 2, 1, 0]


class TestTable2Definitions:
    """Each scheme's early/late split exactly as Table II specifies."""

    def test_nogap_everything_early(self):
        assert NOGAP.early_steps == frozenset(ALL_STEPS)
        assert NOGAP.late_steps == frozenset()

    def test_m_delays_mac_only(self):
        assert M.late_steps == {MetadataStep.MAC}

    def test_cm_delays_ciphertext_and_mac(self):
        assert CM.late_steps == {MetadataStep.CIPHERTEXT, MetadataStep.MAC}

    def test_bcm_adds_bmt_root(self):
        assert BCM.late_steps == {
            MetadataStep.BMT_ROOT,
            MetadataStep.CIPHERTEXT,
            MetadataStep.MAC,
        }

    def test_obcm_adds_otp(self):
        assert OBCM.early_steps == {MetadataStep.COUNTER}

    def test_cobcm_everything_late(self):
        assert COBCM.early_steps == frozenset()
        assert COBCM.late_steps == frozenset(ALL_STEPS)


class TestValueDependence:
    """Sec. IV-A: data-value-dependent vs independent metadata."""

    def test_partition_is_complete(self):
        assert VALUE_INDEPENDENT_STEPS | VALUE_DEPENDENT_STEPS == set(ALL_STEPS)
        assert not VALUE_INDEPENDENT_STEPS & VALUE_DEPENDENT_STEPS

    def test_ciphertext_and_mac_are_value_dependent(self):
        assert VALUE_DEPENDENT_STEPS == {
            MetadataStep.CIPHERTEXT,
            MetadataStep.MAC,
        }

    def test_nogap_eager_value_dependent(self):
        assert NOGAP.eager_value_dependent == VALUE_DEPENDENT_STEPS
        assert NOGAP.eager_value_independent == VALUE_INDEPENDENT_STEPS

    def test_cm_has_no_eager_value_dependent_work(self):
        assert CM.eager_value_dependent == frozenset()
        assert CM.eager_value_independent == VALUE_INDEPENDENT_STEPS


class TestDependencyValidation:
    """Fig. 4's dependency edges constrain valid schemes."""

    def test_otp_requires_counter(self):
        assert MetadataStep.COUNTER in STEP_DEPENDENCIES[MetadataStep.OTP]

    def test_mac_requires_ciphertext(self):
        assert MetadataStep.CIPHERTEXT in STEP_DEPENDENCIES[MetadataStep.MAC]

    def test_early_step_with_late_dependency_rejected(self):
        """An eager OTP from a lazy counter is impossible hardware."""
        with pytest.raises(ValueError, match="depends on late"):
            Scheme(
                name="invalid",
                early_steps=frozenset({MetadataStep.OTP}),
                late_steps=frozenset(ALL_STEPS) - {MetadataStep.OTP},
            )

    def test_overlapping_early_late_rejected(self):
        with pytest.raises(ValueError, match="both early and late"):
            Scheme(
                name="invalid",
                early_steps=frozenset(ALL_STEPS),
                late_steps=frozenset({MetadataStep.MAC}),
            )

    def test_unassigned_step_rejected(self):
        with pytest.raises(ValueError, match="unassigned"):
            Scheme(
                name="invalid",
                early_steps=frozenset(),
                late_steps=frozenset({MetadataStep.MAC}),
            )


class TestFig5FieldTable:
    """Which SecPB fields each scheme keeps (Fig. 5, top-left table)."""

    def test_nogap_keeps_all_fields(self):
        assert fields_for_scheme(NOGAP) == {"O", "Dc", "C", "B", "M"}

    def test_m_drops_mac_field(self):
        assert fields_for_scheme(M) == {"O", "Dc", "C", "B"}

    def test_cm_keeps_otp_counter_bmt(self):
        assert fields_for_scheme(CM) == {"O", "C", "B"}

    def test_bcm_keeps_otp_counter(self):
        assert fields_for_scheme(BCM) == {"O", "C"}

    def test_obcm_keeps_counter_only(self):
        assert fields_for_scheme(OBCM) == {"C"}

    def test_cobcm_keeps_nothing(self):
        assert fields_for_scheme(COBCM) == frozenset()
