"""Tests for repro.energy and baselines.eadr — Tables III, V, VI."""

import pytest

from repro.baselines.eadr import (
    eadr_drain_energy_nj,
    estimate_eadr,
    estimate_secure_eadr,
    secure_eadr_drain_energy_nj,
)
from repro.core.schemes import SPECTRUM_ORDER, get_scheme
from repro.energy.battery import (
    bbb_drain_energy_nj,
    entry_field_moves,
    entry_late_work,
    estimate_bbb,
    estimate_scheme,
    full_tuple_energy,
    secpb_drain_energy_nj,
    size_sweep,
)
from repro.energy.costs import (
    CORE_AREA_MM2,
    LI_THIN,
    SUPERCAP,
    EnergyCosts,
    footprint_ratio_pct,
)
from repro.sim.config import SECPB_SIZE_SWEEP, SystemConfig


class TestTable3Constants:
    def test_per_block_values(self):
        costs = EnergyCosts()
        assert costs.move_secpb_block_nj == pytest.approx(11.839 * 64)
        assert costs.move_pm_block_nj == pytest.approx(11.228 * 64)
        assert costs.sha_block_nj == pytest.approx(79.29 * 64)
        assert costs.aes_block_nj == pytest.approx(30.0 * 64)


class TestBatteryTechnology:
    def test_supercap_vs_li_thin_ratio_is_100x(self):
        energy = 1e6
        assert SUPERCAP.volume_mm3(energy) == pytest.approx(
            100 * LI_THIN.volume_mm3(energy)
        )

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            SUPERCAP.volume_mm3(-1)

    def test_footprint_ratio_is_cube_face(self):
        # 8 mm^3 cube -> 4 mm^2 face
        assert footprint_ratio_pct(8.0) == pytest.approx(100 * 4.0 / CORE_AREA_MM2)

    def test_footprint_rejects_negative(self):
        with pytest.raises(ValueError):
            footprint_ratio_pct(-1.0)


class TestSchemeDrainEnergy:
    def test_lazier_schemes_need_more_battery(self):
        """Table V's central trend: the more work deferred post-crash, the
        bigger the battery."""
        energies = [
            secpb_drain_energy_nj(get_scheme(name)) for name in SPECTRUM_ORDER
        ]
        # SPECTRUM_ORDER is laziest first: energies must be non-increasing.
        assert all(a >= b for a, b in zip(energies, energies[1:]))

    def test_bcm_to_cm_is_the_big_drop(self):
        """Sec. VI-C: removing the late BMT update shrinks the battery ~6.5x."""
        bcm = secpb_drain_energy_nj(get_scheme("bcm"))
        cm = secpb_drain_energy_nj(get_scheme("cm"))
        assert 4.0 < bcm / cm < 9.0

    def test_bbb_smallest(self):
        bbb = bbb_drain_energy_nj()
        nogap = secpb_drain_energy_nj(get_scheme("nogap"))
        assert bbb < nogap

    def test_pending_update_adds_one_tuple(self):
        cfg = SystemConfig()
        costs = EnergyCosts()
        without = secpb_drain_energy_nj(get_scheme("cm"), cfg, costs, pending_updates=0)
        with_one = secpb_drain_energy_nj(get_scheme("cm"), cfg, costs, pending_updates=1)
        assert with_one - without == pytest.approx(
            full_tuple_energy(costs, cfg.security.bmt_levels)
        )

    def test_field_moves_follow_fig5(self):
        costs = EnergyCosts()
        block = costs.move_secpb_block_nj
        # COBCM: plaintext only; NoGap: Dc + M; M: Dc only (MAC is late);
        # CM/BCM: Dp + O (the MC XORs the pre-computed pad).
        assert entry_field_moves(get_scheme("cobcm"), costs) == pytest.approx(block)
        assert entry_field_moves(get_scheme("nogap"), costs) == pytest.approx(2 * block)
        assert entry_field_moves(get_scheme("m"), costs) == pytest.approx(block)
        assert entry_field_moves(get_scheme("cm"), costs) == pytest.approx(2 * block)
        assert entry_field_moves(get_scheme("bcm"), costs) == pytest.approx(2 * block)

    def test_late_work_components(self):
        costs = EnergyCosts()
        nogap = entry_late_work(get_scheme("nogap"), costs, 8)
        cobcm = entry_late_work(get_scheme("cobcm"), costs, 8)
        assert nogap == 0.0
        expected = (
            costs.move_pm_block_nj
            + costs.aes_block_nj
            + 8 * (costs.move_pm_block_nj + costs.sha_block_nj)
            + costs.sha_block_nj
        )
        assert cobcm == pytest.approx(expected)


class TestPaperTable5Values:
    """Measured-vs-paper for Table V (SuperCap volumes, 32-entry SecPB)."""

    @pytest.mark.parametrize(
        "scheme_name,paper_mm3,tolerance",
        [
            ("cobcm", 4.89, 0.05),
            ("obcm", 4.82, 0.05),
            ("bcm", 4.72, 0.05),
            ("cm", 0.73, 0.05),
            ("m", 0.67, 0.05),
            ("nogap", 0.28, 0.05),
        ],
    )
    def test_scheme_battery_close_to_paper(self, scheme_name, paper_mm3, tolerance):
        estimate = estimate_scheme(get_scheme(scheme_name))
        assert estimate.supercap_mm3 == pytest.approx(paper_mm3, rel=tolerance)

    def test_bbb_matches_paper(self):
        assert estimate_bbb().supercap_mm3 == pytest.approx(0.07, abs=0.005)

    def test_eadr_matches_paper_exactly(self):
        """149.32 mm^3 — our reconstruction of the paper's arithmetic is
        exact for eADR."""
        assert estimate_eadr().supercap_mm3 == pytest.approx(149.32, rel=0.001)

    def test_secure_eadr_with_paper_effective_bmt_ops(self):
        estimate = estimate_secure_eadr(bmt_ops_per_line=2)
        assert estimate.supercap_mm3 == pytest.approx(3706, rel=0.15)

    def test_secure_eadr_stated_worst_case_is_larger(self):
        """The paper's stated assumptions (8 uncached BMT ops/line) give a
        ~3x larger battery than its table — the documented deviation."""
        worst = secure_eadr_drain_energy_nj(bmt_ops_per_line=8)
        table = secure_eadr_drain_energy_nj(bmt_ops_per_line=2)
        assert worst > 2 * table

    def test_seadr_to_cobcm_ratio_order_of_magnitude(self):
        """Sec. VI-C: s_eADR needs ~753x COBCM's battery."""
        seadr = estimate_secure_eadr(bmt_ops_per_line=2).supercap_mm3
        cobcm = estimate_scheme(get_scheme("cobcm")).supercap_mm3
        assert 400 < seadr / cobcm < 1200

    def test_eadr_to_bbb_ratio(self):
        """Sec. VI-C: eADR needs ~2500x BBB's battery (ours ~2200x)."""
        ratio = eadr_drain_energy_nj() / bbb_drain_energy_nj()
        assert 1500 < ratio < 3000

    def test_core_area_ratios_match_paper(self):
        cobcm = estimate_scheme(get_scheme("cobcm"))
        assert cobcm.supercap_core_pct == pytest.approx(53.6, rel=0.05)
        assert cobcm.li_thin_core_pct == pytest.approx(2.5, rel=0.1)


class TestTable6SizeSweep:
    def test_battery_scales_linearly_with_entries(self):
        sweep = size_sweep(get_scheme("cobcm"), SECPB_SIZE_SWEEP)
        e8 = sweep[8].energy_nj
        e512 = sweep[512].energy_nj
        # Linear per-entry term dominates: 64x entries ~ 60-64x energy.
        assert 50 < e512 / e8 < 64.5

    @pytest.mark.parametrize(
        "entries,paper_mm3",
        [(8, 1.33), (16, 2.52), (32, 4.89), (64, 9.63), (128, 19.12), (256, 38.11), (512, 76.10)],
    )
    def test_cobcm_sweep_matches_paper(self, entries, paper_mm3):
        sweep = size_sweep(get_scheme("cobcm"), [entries])
        assert sweep[entries].supercap_mm3 == pytest.approx(paper_mm3, rel=0.06)

    def test_nogap_sweep_anchored_at_default_size(self):
        """NoGap's Table VI column is internally inconsistent with its
        Table V row (see DESIGN.md deviations); we match the Table V
        anchor at 32 entries and keep the per-entry slope principled,
        which undershoots the paper's 512-entry value by ~2x."""
        sweep = size_sweep(get_scheme("nogap"), [32, 512])
        assert sweep[32].supercap_mm3 == pytest.approx(0.28, rel=0.05)
        assert 1.5 < sweep[512].supercap_mm3 < 4.35
