"""Tests for repro.security.bmt — the Bonsai Merkle Tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.bmt import BonsaiMerkleTree

KEY = b"integrity-key-0123456789abcdef--"


def tree(height=3, arity=4):
    return BonsaiMerkleTree(KEY, height=height, arity=arity)


class TestConstruction:
    def test_capacity(self):
        assert tree(height=3, arity=4).capacity == 64
        assert BonsaiMerkleTree(KEY, height=8, arity=8).capacity == 8**8

    def test_invalid_height_rejected(self):
        with pytest.raises(ValueError):
            BonsaiMerkleTree(KEY, height=0)

    def test_invalid_arity_rejected(self):
        with pytest.raises(ValueError):
            BonsaiMerkleTree(KEY, arity=1)

    def test_empty_tree_has_stable_root(self):
        assert tree().root == tree().root


class TestUpdateVerify:
    def test_update_changes_root(self):
        t = tree()
        before = t.root
        t.update_leaf(0, b"payload-0")
        assert t.root != before

    def test_verify_accepts_current_leaf(self):
        t = tree()
        t.update_leaf(5, b"payload-5")
        assert t.verify_leaf(5, b"payload-5")

    def test_verify_rejects_wrong_payload(self):
        t = tree()
        t.update_leaf(5, b"payload-5")
        assert not t.verify_leaf(5, b"payload-X")

    def test_verify_rejects_stale_leaf_after_update(self):
        """Replay protection: an old counter-block value fails against the
        new root."""
        t = tree()
        t.update_leaf(5, b"version-1")
        t.update_leaf(5, b"version-2")
        assert not t.verify_leaf(5, b"version-1")
        assert t.verify_leaf(5, b"version-2")

    def test_verify_rejects_transplanted_leaf(self):
        """The same payload installed at leaf 3 must not verify at leaf 7."""
        t = tree()
        t.update_leaf(3, b"payload")
        assert not t.verify_leaf(7, b"payload")

    def test_unwritten_sibling_leaves_verify_as_empty(self):
        t = tree()
        t.update_leaf(0, b"payload")
        assert not t.verify_leaf(1, b"payload")

    def test_update_path_length_is_height(self):
        t = tree(height=3)
        path = t.update_leaf(0, b"x")
        assert len(path) == 3
        assert path[-1].level == 3 and path[-1].index == 0

    def test_path_of_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            tree().path_of(10**9)

    def test_verify_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            tree().verify_leaf(10**9, b"x")

    def test_node_hash_count_accumulates(self):
        t = tree(height=3)
        t.update_leaf(0, b"a")
        t.update_leaf(1, b"b")
        assert t.node_hashes == 6
        assert t.leaf_updates == 2


class TestCorruption:
    def test_corrupt_root_breaks_verification(self):
        t = tree()
        t.update_leaf(0, b"payload")
        t.corrupt_root(b"\x00" * 32)
        assert not t.verify_leaf(0, b"payload")


class TestSnapshotRestore:
    def test_roundtrip(self):
        t = tree()
        t.update_leaf(0, b"v1")
        snap = t.snapshot()
        t.update_leaf(0, b"v2")
        t.restore(snap)
        assert t.verify_leaf(0, b"v1")
        assert not t.verify_leaf(0, b"v2")

    def test_snapshot_is_independent(self):
        t = tree()
        t.update_leaf(0, b"v1")
        snap = t.snapshot()
        t.update_leaf(1, b"other")
        nodes, root = snap
        assert (0, 1) not in nodes or root != t.root


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.binary(min_size=1, max_size=72)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_latest_payloads_always_verify(self, updates):
        """Invariant: after any update sequence, the latest payload of
        every touched leaf verifies and stale payloads do not."""
        t = tree(height=3, arity=4)
        latest = {}
        for leaf, payload in updates:
            t.update_leaf(leaf, payload)
            latest[leaf] = payload
        for leaf, payload in latest.items():
            assert t.verify_leaf(leaf, payload)

    @given(st.lists(st.integers(0, 63), min_size=2, max_size=20, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_distinct_contents_distinct_roots(self, leaves):
        """Different update targets lead to different roots."""
        t1 = tree(height=3, arity=4)
        t2 = tree(height=3, arity=4)
        for leaf in leaves:
            t1.update_leaf(leaf, b"p")
        for leaf in leaves[:-1]:
            t2.update_leaf(leaf, b"p")
        assert t1.root != t2.root
