"""Resumable runs: journaled checkpoints, interrupts, byte-identity.

Acceptance anchors (ISSUE 5):

* ``run_tasks`` skips journaled results, fires the checkpoint hook for
  each fresh one, and a tripped stop token raises ``RunInterrupted``
  carrying everything completed so far;
* a campaign interrupted at any prefix and then resumed renders a
  report **byte-identical** to an uninterrupted run (including the
  minimized reproducer set);
* SIGKILL partway through a ``--jobs`` campaign leaves a journal that
  is a valid prefix — resuming from it reproduces the baseline report
  byte-for-byte (subprocess test at the bottom);
* stale journals (different spec fingerprint) are rejected loudly;
* (ISSUE 8) SIGTERM mid-``--jobs`` experiment exits resumable with zero
  leaked ``/dev/shm`` trace segments, and ``--resume`` renders an
  artifact byte-identical to the uninterrupted run.
"""

import dataclasses
import glob
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass

import pytest

from repro.analysis.runner import JobFailure, run_tasks
from repro.durability import (
    EXIT_RESUMABLE,
    RunInterrupted,
    StaleJournalError,
    StopToken,
    read_journal,
    verify_artifact,
    ArtifactStatus,
)
from repro.fault import CampaignSpec, run_campaign
from repro.fault import campaign as campaign_mod
from repro.fault.campaign import (
    JOURNAL_KIND,
    build_cases,
    outcome_from_payload,
    outcome_to_payload,
    spec_payload,
)


@dataclass(frozen=True)
class Task:
    key: str
    value: int = 0


def _double(task: Task) -> int:
    return task.value * 2


def _never_called(task: Task) -> int:
    raise AssertionError(f"journaled task {task.key} was re-executed")


class CountingStop(StopToken):
    """Trips itself once ``check`` has been polled ``after`` times."""

    def __init__(self, after: int):
        super().__init__()
        self.after = after
        self.polls = 0

    def check(self) -> bool:
        self.polls += 1
        if self.polls > self.after:
            self.trip(f"tripped after {self.after} poll(s)")
        return self.triggered


class TestRunTasksResume:
    def test_completed_tasks_never_reexecute(self):
        tasks = [Task("a", 1), Task("b", 2), Task("c", 3)]
        results = run_tasks(
            tasks, _never_called, workers=1,
            completed={"a": 2, "b": 4, "c": 6},
        )
        assert results == {"a": 2, "b": 4, "c": 6}

    def test_partial_completed_runs_only_remainder(self):
        tasks = [Task("a", 1), Task("b", 2), Task("c", 3)]
        seen = []
        results = run_tasks(
            tasks, _double, workers=1,
            completed={"b": 4},
            on_result=lambda key, value: seen.append(key),
        )
        assert results == {"a": 2, "b": 4, "c": 6}
        # The hook fires for fresh results only — journaled ones are
        # already on disk.
        assert seen == ["a", "c"]

    def test_resumed_equals_uninterrupted(self):
        tasks = [Task(str(i), i) for i in range(8)]
        clean = run_tasks(tasks, _double, workers=1)
        stop = CountingStop(after=3)
        with pytest.raises(RunInterrupted) as excinfo:
            run_tasks(tasks, _double, workers=1, stop=stop)
        checkpoint = excinfo.value.completed
        assert 0 < len(checkpoint) < len(tasks)
        resumed = run_tasks(tasks, _double, workers=1, completed=checkpoint)
        assert resumed == clean
        assert list(resumed) == list(clean)

    def test_serial_interrupt_carries_prefix(self):
        tasks = [Task(str(i), i) for i in range(6)]
        with pytest.raises(RunInterrupted) as excinfo:
            run_tasks(tasks, _double, workers=1, stop=CountingStop(after=2))
        assert excinfo.value.completed == {"0": 0, "1": 2}
        assert "tripped after 2" in excinfo.value.reason

    def test_interrupt_merges_journaled_prefix(self):
        tasks = [Task(str(i), i) for i in range(6)]
        with pytest.raises(RunInterrupted) as excinfo:
            run_tasks(
                tasks, _double, workers=1,
                completed={"0": 0, "1": 2},
                stop=CountingStop(after=1),
            )
        # The checkpoint sees journal + fresh, so nothing re-runs twice.
        assert excinfo.value.completed == {"0": 0, "1": 2, "2": 4}

    def test_pool_interrupt_salvages_and_raises(self):
        tasks = [Task(str(i), i) for i in range(12)]
        stop = StopToken()
        collected = []

        def trip_after_two(key, value):
            collected.append(key)
            if len(collected) == 2:
                stop.trip("test interrupt")

        with pytest.raises(RunInterrupted) as excinfo:
            run_tasks(
                tasks, _double, workers=4,
                stop=stop, on_result=trip_after_two,
            )
        completed = excinfo.value.completed
        assert len(completed) >= 2
        # Every salvaged value is correct, and a resume finishes the job.
        assert all(completed[key] == int(key) * 2 for key in completed)
        resumed = run_tasks(tasks, _double, workers=4, completed=completed)
        assert resumed == run_tasks(tasks, _double, workers=1)

    def test_untripped_token_is_free(self):
        tasks = [Task("a", 1)]
        assert run_tasks(
            tasks, _double, workers=1, stop=StopToken()
        ) == {"a": 2}


SMALL_SPEC = CampaignSpec(
    schemes=("cobcm", "nogap"), crash_points=2, gapped_points=3,
    num_stores=30,
)


class TestCampaignJournal:
    def test_journal_records_every_case(self, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"
        report = run_campaign(
            SMALL_SPEC, jobs=1, minimize=False, journal=journal_path
        )
        journal = read_journal(journal_path)
        assert journal.kind == JOURNAL_KIND
        assert len(journal.entries) == report.total
        # Tuples land as JSON lists; the canonical fingerprint is the
        # identity that matters.
        from repro.durability import fingerprint

        assert journal.fingerprint == fingerprint(spec_payload(SMALL_SPEC))

    def test_interrupted_then_resumed_byte_identical(self, tmp_path):
        baseline = run_campaign(SMALL_SPEC, jobs=1, minimize=False)
        journal_path = tmp_path / "campaign.jsonl"
        with pytest.raises(RunInterrupted):
            run_campaign(
                SMALL_SPEC, jobs=1, minimize=False,
                journal=journal_path, stop=CountingStop(after=4),
            )
        prefix = read_journal(journal_path)
        total = len(build_cases(SMALL_SPEC))
        assert 0 < len(prefix.entries) < total
        resumed = run_campaign(
            SMALL_SPEC, jobs=1, minimize=False,
            journal=journal_path, resume=True,
        )
        assert resumed.to_json() == baseline.to_json()
        assert resumed.render() == baseline.render()

    def test_resume_with_reproducers_byte_identical(self, tmp_path, monkeypatch):
        real_execute = campaign_mod.execute_case

        def grade_brownouts_wrong(case):
            result = real_execute(case)
            if "brownout" in case.case_id:
                result = dataclasses.replace(
                    result, passed=False, observed="forced-failure"
                )
            return result

        monkeypatch.setattr(
            campaign_mod, "execute_case", grade_brownouts_wrong
        )
        spec = CampaignSpec(
            schemes=("cobcm",), crash_points=1, gapped_points=1,
            num_stores=20,
        )
        baseline = run_campaign(spec, jobs=1, minimize=True)
        assert baseline.reproducers  # the forced failures minimized
        journal_path = tmp_path / "campaign.jsonl"
        with pytest.raises(RunInterrupted):
            run_campaign(
                spec, jobs=1, minimize=True,
                journal=journal_path, stop=CountingStop(after=2),
            )
        resumed = run_campaign(
            spec, jobs=1, minimize=True, journal=journal_path, resume=True,
        )
        assert resumed.to_json() == baseline.to_json()
        assert [r.json for r in resumed.reproducers] == [
            r.json for r in baseline.reproducers
        ]

    def test_stale_journal_rejected(self, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"
        run_campaign(SMALL_SPEC, jobs=1, minimize=False, journal=journal_path)
        other = dataclasses.replace(SMALL_SPEC, seed=999)
        with pytest.raises(StaleJournalError, match="different spec"):
            run_campaign(
                other, jobs=1, minimize=False,
                journal=journal_path, resume=True,
            )

    def test_fresh_run_truncates_old_journal(self, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"
        run_campaign(SMALL_SPEC, jobs=1, minimize=False, journal=journal_path)
        before = journal_path.read_bytes()
        run_campaign(SMALL_SPEC, jobs=1, minimize=False, journal=journal_path)
        assert journal_path.read_bytes() == before

    def test_case_result_payload_roundtrip(self):
        case = build_cases(SMALL_SPEC)[0]
        result = campaign_mod.execute_case(case)
        payload = outcome_to_payload(result)
        json.dumps(payload)  # must be JSON-clean
        assert outcome_from_payload(payload) == result

    def test_job_failure_payload_roundtrip(self):
        failure = JobFailure(
            key=("case", 3), error_type="RuntimeError", message="boom",
            traceback="Traceback ...", attempts=2, timed_out=False,
        )
        payload = outcome_to_payload(failure)
        json.dumps(payload)
        assert outcome_from_payload(payload) == failure

    def test_unknown_payload_kind_rejected(self):
        with pytest.raises(ValueError, match="payload kind"):
            outcome_from_payload({"kind": "mystery", "data": {}})


CLI = [sys.executable, "-m", "repro", "faultcampaign"]
CAMPAIGN_ARGS = [
    "--crash-points", "6", "--num-stores", "400", "--jobs", "2",
]


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def _shm_segments(pid):
    """Trace segments owned by ``pid`` still present in /dev/shm."""
    return glob.glob(f"/dev/shm/secpb_shm_{pid}_*")


class TestKillMidRun:
    """The satellite: SIGKILL a --jobs campaign, resume, compare bytes."""

    def test_sigkill_journal_prefix_resume_byte_identical(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        subprocess.run(
            CLI + CAMPAIGN_ARGS + ["--save", str(baseline)],
            check=True, env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        journal_path = tmp_path / "campaign.jsonl"
        proc = subprocess.Popen(
            CLI + CAMPAIGN_ARGS + ["--journal", str(journal_path)],
            env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for a few checkpointed cases, then kill -9 mid-run.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    if len(journal_path.read_bytes().splitlines()) >= 4:
                        break
                except OSError:
                    pass
                if proc.poll() is not None:
                    break
                time.sleep(0.01)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait()

        # The journal must be a valid prefix: parseable header, every
        # complete line a replayable record, at most a torn tail.
        journal = read_journal(journal_path)
        assert journal.kind == JOURNAL_KIND
        assert len(journal.entries) >= 1

        resumed = tmp_path / "resumed.json"
        done = subprocess.run(
            CLI + CAMPAIGN_ARGS + [
                "--resume", str(journal_path), "--save", str(resumed),
            ],
            env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        assert done.returncode == 0
        assert resumed.read_bytes() == baseline.read_bytes()
        # Both reports carry verifiable sidecar manifests.
        assert verify_artifact(baseline) is ArtifactStatus.OK
        assert verify_artifact(resumed) is ArtifactStatus.OK

    def test_sigterm_experiment_no_shm_leak_resume_byte_identical(
        self, tmp_path
    ):
        """ISSUE 8: SIGTERM mid-sweep leaves zero /dev/shm segments and
        a journal whose resume renders the identical artifact."""
        if not os.path.isdir("/dev/shm"):
            pytest.skip("requires /dev/shm")
        experiment = [sys.executable, "-m", "repro", "experiment", "table4"]
        args = ["--num-ops", "1500", "--jobs", "2"]

        baseline = tmp_path / "baseline.json"
        clean = subprocess.Popen(
            experiment + args + ["--save", str(baseline)],
            env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        assert clean.wait(timeout=300) == 0
        # Normal exit: the atexit owner cleanup ran.
        assert _shm_segments(clean.pid) == []

        journal_path = tmp_path / "experiment.jsonl"
        proc = subprocess.Popen(
            experiment + args + ["--journal", str(journal_path)],
            env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                try:
                    if len(journal_path.read_bytes().splitlines()) >= 3:
                        break
                except OSError:
                    pass
                if proc.poll() is not None:
                    break
                time.sleep(0.01)
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        finally:
            returncode = proc.wait(timeout=300)
        if returncode == 0:
            pytest.skip("sweep finished before the signal landed")
        assert returncode == EXIT_RESUMABLE
        # The graceful-shutdown checkpoint path also unlinked every
        # published trace segment the child owned.
        assert _shm_segments(proc.pid) == []

        resumed = tmp_path / "resumed.json"
        done = subprocess.Popen(
            experiment + args + [
                "--resume", str(journal_path), "--save", str(resumed),
            ],
            env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        assert done.wait(timeout=300) == 0
        assert _shm_segments(done.pid) == []
        assert resumed.read_bytes() == baseline.read_bytes()

    def test_enospc_on_checkpoint_exits_resumable_byte_identical(
        self, tmp_path
    ):
        """ISSUE 9: the filesystem filling up mid-run is an interrupt,
        not a crash — exit 75, and a resume on a healthy disk renders
        the identical artifact."""
        baseline = tmp_path / "baseline.json"
        subprocess.run(
            CLI + CAMPAIGN_ARGS + ["--save", str(baseline)],
            check=True, env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

        # Arm an envfault plan: the 5th journal append (header + 4
        # records) hits ENOSPC, deterministically.
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "plan_version": 1,
            "seed": 0,
            "specs": [
                {"op": "journal.write", "index": 4, "kind": "enospc"},
            ],
        }))
        journal_path = tmp_path / "campaign.jsonl"
        env = _env()
        env["SECPB_ENVFAULT"] = str(plan_path)
        first = subprocess.run(
            CLI + CAMPAIGN_ARGS + ["--journal", str(journal_path)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        )
        assert first.returncode == EXIT_RESUMABLE, first.stderr.decode()
        assert b"--resume" in first.stderr

        # The journal survived as a valid prefix (ENOSPC struck before
        # the record landed, so nothing torn or half-written).
        journal = read_journal(journal_path)
        assert journal.kind == JOURNAL_KIND
        assert len(journal.entries) >= 1

        resumed = tmp_path / "resumed.json"
        done = subprocess.run(
            CLI + CAMPAIGN_ARGS + [
                "--resume", str(journal_path), "--save", str(resumed),
            ],
            env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        assert done.returncode == 0
        assert resumed.read_bytes() == baseline.read_bytes()
        assert verify_artifact(resumed) is ArtifactStatus.OK

    def test_deadline_exit_code_then_resume(self, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"
        first = subprocess.run(
            CLI + CAMPAIGN_ARGS + [
                "--journal", str(journal_path), "--deadline", "0.2",
            ],
            env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        )
        if first.returncode == 0:
            pytest.skip("campaign finished inside the 0.2s deadline")
        assert first.returncode == EXIT_RESUMABLE
        assert b"--resume" in first.stderr
        done = subprocess.run(
            CLI + CAMPAIGN_ARGS + ["--resume", str(journal_path)],
            env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        assert done.returncode == 0


class TestServeDrain:
    """ISSUE 10: SIGTERM mid-burst drains ``repro serve`` gracefully —
    in-flight work finishes, the queued remainder lands in a drain
    journal (exit 75), no ``/dev/shm`` residue survives, and
    ``--resume-drain`` replays the journal."""

    def test_sigterm_mid_burst_journals_exit_75_no_shm_leak(self, tmp_path):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("requires /dev/shm")
        from repro.serve import ServeClient, seeded_burst

        socket_path = str(tmp_path / "s.sock")
        journal_path = tmp_path / "serve.drain.jsonl"
        shm_before = set(os.listdir("/dev/shm"))
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", socket_path,
                "--workers", "2", "--queue-depth", "32",
                "--drain-journal", str(journal_path),
            ],
            env=_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        requests = seeded_burst(2023, 16, num_ops=60000)
        try:
            # The server imports the whole serving stack before binding.
            deadline = time.monotonic() + 60
            while not os.path.exists(socket_path):
                assert server.poll() is None, "server died before binding"
                assert time.monotonic() < deadline, "socket never appeared"
                time.sleep(0.05)
            with ServeClient(socket_path) as client:
                for request in requests:
                    client.send(request)
                # Let at least one request complete, then pull the plug
                # while the queue is still deep.
                first = client.collect(requests[0].id, timeout=120.0)
                assert first["status"] == "ok"
                server.send_signal(signal.SIGTERM)
                responses = {first["id"]: first}
                for request in requests[1:]:
                    responses[request.id] = client.collect(
                        request.id, timeout=120.0
                    )
        finally:
            try:
                returncode = server.wait(timeout=120)
            except subprocess.TimeoutExpired:
                server.send_signal(signal.SIGTERM)
                try:
                    returncode = server.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    server.kill()
                    raise

        statuses = {
            request_id: response["status"]
            for request_id, response in responses.items()
        }
        journaled = [r for r, s in statuses.items() if s == "journaled"]
        completed = [r for r, s in statuses.items() if s == "ok"]
        # Every request was answered exactly once: finished or journaled,
        # nothing dropped, nothing run twice.
        assert set(statuses.values()) <= {"ok", "journaled"}
        assert len(completed) + len(journaled) == len(requests)
        if not journaled:
            pytest.skip("burst finished before the signal landed")
        assert returncode == EXIT_RESUMABLE

        # The drain released the warm pool and every shm trace segment.
        shm_after = set(os.listdir("/dev/shm"))
        assert not {
            name for name in shm_after - shm_before
            if name.startswith("secpb_shm_")
        }

        # The journal is a valid serve-drain journal holding exactly the
        # unfinished requests, in admission order.
        journal = read_journal(journal_path)
        assert journal.kind == "serve-drain"
        assert list(journal.entries) == journaled

        # --resume-drain replays every journaled request...
        saved = tmp_path / "resumed.json"
        done = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve",
                "--resume-drain", str(journal_path),
                "--workers", "2", "--save", str(saved),
            ],
            env=_env(), stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
        )
        assert done.returncode == 0
        assert f"resumed {len(journaled)} drained request(s)" in (
            done.stdout.decode()
        )
        replayed = json.loads(saved.read_text())
        assert list(replayed) == journaled

        # ...byte-identically: spot-check the first journaled request
        # against a direct in-process run of the same jobs.
        from repro.analysis.runner import run_jobs
        from repro.serve import build_jobs, parse_request, results_payload

        request = parse_request(journal.entries[journaled[0]])
        jobs = build_jobs(request)
        reference = results_payload(
            jobs,
            run_jobs(
                jobs,
                workers=2 if len(jobs) > 1 else 1,
                on_error="raise",
                retries=0,
            ),
        )
        assert json.dumps(
            replayed[journaled[0]], sort_keys=True
        ) == json.dumps(reference, sort_keys=True)
