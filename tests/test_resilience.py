"""Resilience policy engine: retry schedules, breakers, admission, pacing.

Acceptance anchors (ISSUE 10):

* retry schedules are **pure functions** of (policy, key) — no RNG, no
  clock read — and the shm attach policy reproduces the pre-migration
  backoff tuple bit-exactly (the byte-identity pin lives here *and* in
  ``tests/test_runtime.py``);
* every wait flows through the injectable clock: a ``ManualClock``
  drives a full breaker closed → open → half-open → closed cycle and a
  three-step restart-backoff schedule without sleeping real time;
* bounded admission sheds with typed :class:`~repro.resilience.Rejected`
  results and the accept/shed partition of an offer sequence is a pure
  function of arrival order and capacity.
"""

import hashlib

import pytest

from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    Bulkhead,
    CircuitBreaker,
    Deadline,
    ManualClock,
    REJECT_BULKHEAD,
    REJECT_DRAINING,
    REJECT_QUEUE_FULL,
    RecyclePolicy,
    Rejected,
    RestartBackoff,
    RetryPolicy,
    SystemClock,
    TimeoutPolicy,
    get_clock,
    jitter_token,
    scoped_clock,
    set_clock,
)


# --- jitter tokens and schedules ---------------------------------------------


class TestJitterToken:
    def test_hex_key_parses_directly(self):
        assert jitter_token("deadbeef" + "0" * 56) == 0xDEADBEEF

    def test_non_hex_key_hashes_deterministically(self):
        expected = int(
            hashlib.sha256(b"request-42").hexdigest()[:8], 16
        )
        assert jitter_token("request-42") == expected
        assert jitter_token("request-42") == jitter_token("request-42")

    def test_distinct_keys_spread(self):
        assert jitter_token("request-1") != jitter_token("request-2")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.0)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(max_delay=-0.1)
        with pytest.raises(ValueError, match="jitter_frac"):
            RetryPolicy(jitter_frac=-0.5)

    def test_zero_base_delay_means_zero_schedule(self):
        policy = RetryPolicy(attempts=4, base_delay=0.0)
        assert policy.delays("deadbeef") == (0.0, 0.0, 0.0)

    def test_schedule_is_pure_per_key(self):
        policy = RetryPolicy(attempts=5, base_delay=0.01)
        digest = "a1b2c3d4" + "0" * 56
        assert policy.delays(digest) == policy.delays(digest)
        assert len(policy.delays(digest)) == policy.attempts - 1

    def test_nibble_jitter_formula_pinned(self):
        # The contract the shm migration leans on: retry i waits
        # base * multiplier**i * (1 + nibble_i * jitter_frac), where
        # nibble_i is bits [4i, 4i+4) of the key token.
        policy = RetryPolicy(
            attempts=4, base_delay=0.01, multiplier=2.0, jitter_frac=1.0 / 32.0
        )
        digest = "fedcba98" + "0" * 56
        token = 0xFEDCBA98
        expected = tuple(
            0.01 * 2.0 ** i * (1.0 + ((token >> (4 * i)) & 0xF) / 32.0)
            for i in range(3)
        )
        assert policy.delays(digest) == expected

    def test_max_delay_caps_before_jitter(self):
        policy = RetryPolicy(
            attempts=4,
            base_delay=1.0,
            multiplier=10.0,
            max_delay=2.0,
            jitter_frac=0.0,
        )
        assert policy.delays("deadbeef") == (1.0, 2.0, 2.0)

    def test_jitter_bounded_by_fifteen_nibble_steps(self):
        policy = RetryPolicy(attempts=6, base_delay=0.01, multiplier=2.0)
        for key in ("ffffffff" + "0" * 56, "0" * 64, "serve-req-9"):
            for i, delay in enumerate(policy.delays(key)):
                scaled = min(policy.max_delay, 0.01 * 2.0 ** i)
                assert scaled <= delay <= scaled * (1 + 15 * policy.jitter_frac)

    def test_empty_key_disables_jitter(self):
        policy = RetryPolicy(attempts=3, base_delay=0.5, multiplier=2.0)
        assert policy.delays("") == (0.5, 1.0)

    def test_allows_retry_matches_attempt_budget(self):
        policy = RetryPolicy(attempts=3)
        assert policy.allows_retry(0)
        assert policy.allows_retry(2)
        assert not policy.allows_retry(3)
        # attempts=1 means "run once, never retry" — the runner's
        # retries=0 configuration.
        assert not RetryPolicy(attempts=1).allows_retry(1)

    def test_attempts_iter_sleeps_schedule_between_attempts(self):
        clock = ManualClock()
        policy = RetryPolicy(attempts=3, base_delay=0.5, jitter_frac=0.0)
        attempts = list(policy.attempts_iter("deadbeef", clock=clock))
        assert attempts == [1, 2, 3]
        assert tuple(clock.sleeps) == policy.delays("deadbeef")

    def test_attempts_iter_lazy_success_never_sleeps(self):
        clock = ManualClock()
        policy = RetryPolicy(attempts=3, base_delay=0.5)
        for attempt in policy.attempts_iter("deadbeef", clock=clock):
            break  # first attempt succeeded
        assert clock.sleeps == []

    def test_call_returns_first_success(self):
        clock = ManualClock()
        policy = RetryPolicy(attempts=3, base_delay=0.5)
        assert policy.call(lambda: 42, clock=clock) == 42
        assert clock.sleeps == []

    def test_call_retries_then_succeeds(self):
        clock = ManualClock()
        policy = RetryPolicy(attempts=3, base_delay=0.5, jitter_frac=0.0)
        failures = iter([OSError("one"), OSError("two")])

        def flaky():
            try:
                raise next(failures)
            except StopIteration:
                return "ok"

        seen = []
        result = policy.call(
            flaky,
            key="deadbeef",
            retry_on=(OSError,),
            clock=clock,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))),
        )
        assert result == "ok"
        assert seen == [(1, "one"), (2, "two")]
        assert tuple(clock.sleeps) == policy.delays("deadbeef")

    def test_call_final_failure_propagates(self):
        clock = ManualClock()
        policy = RetryPolicy(attempts=2, base_delay=0.1)

        def always():
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            policy.call(always, retry_on=(OSError,), clock=clock)
        assert len(clock.sleeps) == 1  # one backoff before the final try

    def test_call_giveup_short_circuits(self):
        clock = ManualClock()
        policy = RetryPolicy(attempts=5, base_delay=0.1)

        def vanished():
            raise FileNotFoundError("segment gone for good")

        with pytest.raises(FileNotFoundError):
            policy.call(
                vanished,
                retry_on=(OSError,),
                clock=clock,
                giveup=lambda exc: isinstance(exc, FileNotFoundError),
            )
        assert clock.sleeps == []  # no backoff was burned on a dead target

    def test_call_unlisted_exception_propagates_immediately(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1)
        calls = []

        def wrong_kind():
            calls.append(1)
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            policy.call(wrong_kind, retry_on=(OSError,), clock=ManualClock())
        assert len(calls) == 1


# --- clocks ------------------------------------------------------------------


class TestClocks:
    def test_manual_clock_sleep_advances_and_records(self):
        clock = ManualClock(start=10.0)
        assert clock.monotonic() == 10.0
        clock.sleep(2.5)
        assert clock.monotonic() == 12.5
        assert clock.sleeps == [2.5]

    def test_manual_clock_ignores_nonpositive_sleep(self):
        clock = ManualClock()
        clock.sleep(0.0)
        clock.sleep(-1.0)
        assert clock.monotonic() == 0.0
        assert clock.sleeps == []

    def test_manual_clock_advance(self):
        clock = ManualClock()
        clock.advance(30.0)
        assert clock.monotonic() == 30.0
        assert clock.sleeps == []  # advance is not a sleep

    def test_scoped_clock_installs_and_restores(self):
        before = get_clock()
        manual = ManualClock()
        with scoped_clock(manual) as active:
            assert active is manual
            assert get_clock() is manual
        assert get_clock() is before

    def test_set_clock_returns_previous(self):
        manual = ManualClock()
        previous = set_clock(manual)
        try:
            assert get_clock() is manual
        finally:
            assert set_clock(previous) is manual
        assert get_clock() is previous

    def test_system_clock_is_default(self):
        assert isinstance(get_clock(), SystemClock)


# --- deadlines ---------------------------------------------------------------


class TestDeadlines:
    def test_deadline_expires_on_manual_clock(self):
        clock = ManualClock()
        deadline = Deadline(5.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == 5.0
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_deadline_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="deadline seconds"):
            Deadline(0.0, clock=ManualClock())

    def test_timeout_policy_none_is_unbounded(self):
        assert TimeoutPolicy(None).deadline() is None

    def test_timeout_policy_starts_deadline(self):
        clock = ManualClock()
        deadline = TimeoutPolicy(3.0).deadline(clock=clock)
        assert deadline is not None
        assert deadline.seconds == 3.0

    def test_timeout_policy_validation(self):
        with pytest.raises(ValueError, match="seconds"):
            TimeoutPolicy(-1.0)


# --- circuit breaker ---------------------------------------------------------


def _breaker(clock, **overrides):
    settings = dict(
        window=4,
        failure_rate=0.5,
        min_calls=2,
        open_seconds=10.0,
        half_open_probes=1,
    )
    settings.update(overrides)
    return CircuitBreaker(BreakerPolicy(**settings), name="test", clock=clock)


class TestCircuitBreaker:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="window"):
            BreakerPolicy(window=0)
        with pytest.raises(ValueError, match="failure_rate"):
            BreakerPolicy(failure_rate=0.0)
        with pytest.raises(ValueError, match="failure_rate"):
            BreakerPolicy(failure_rate=1.5)
        with pytest.raises(ValueError, match="min_calls"):
            BreakerPolicy(min_calls=0)
        with pytest.raises(ValueError, match="open_seconds"):
            BreakerPolicy(open_seconds=-1.0)
        with pytest.raises(ValueError, match="half_open_probes"):
            BreakerPolicy(half_open_probes=0)

    def test_single_early_failure_does_not_trip(self):
        breaker = _breaker(ManualClock())
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_at_failure_rate_past_min_calls(self):
        breaker = _breaker(ManualClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.transitions == [(CLOSED, OPEN)]

    def test_successes_dilute_the_window(self):
        breaker = _breaker(ManualClock())
        breaker.record_success()
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/4 < 0.5

    def test_window_slides_old_outcomes_off(self):
        breaker = _breaker(ManualClock())
        breaker.record_failure()
        for _ in range(4):  # window=4: the failure falls off entirely
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/4, not 2/5

    def test_full_cycle_closed_open_half_open_closed(self):
        clock = ManualClock()
        breaker = _breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        # Cooldown not yet served: still shedding.
        clock.advance(9.9)
        assert not breaker.allow()
        # Past the cooldown: one probe is admitted.
        clock.advance(0.2)
        assert breaker.allow()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.transitions == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = ManualClock()
        breaker = _breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert not breaker.allow()  # cooldown restarted at the re-open
        clock.advance(1.0)
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_multiple_probes_required_when_configured(self):
        clock = ManualClock()
        breaker = _breaker(clock, half_open_probes=3)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_closing_clears_the_window(self):
        clock = ManualClock()
        breaker = _breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        # The pre-trip failures are gone: one new failure must not trip.
        breaker.record_failure()
        assert breaker.state == CLOSED


# --- admission and bulkhead --------------------------------------------------


class TestAdmissionController:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_queue_depth"):
            AdmissionPolicy(max_queue_depth=0)

    def test_fifo_accept_then_shed_partition(self):
        admission = AdmissionController(AdmissionPolicy(max_queue_depth=3))
        outcomes = [admission.offer(f"req{i}") for i in range(8)]
        assert outcomes[:3] == [None, None, None]
        assert all(
            isinstance(out, Rejected) and out.reason == REJECT_QUEUE_FULL
            for out in outcomes[3:]
        )
        assert admission.accepted == 3
        assert admission.shed == 5
        assert admission.depth() == 3

    def test_partition_is_deterministic_in_arrival_order(self):
        def run_once():
            admission = AdmissionController(
                AdmissionPolicy(max_queue_depth=4)
            )
            return [
                i for i in range(12) if admission.offer(f"req{i}") is None
            ]

        assert run_once() == run_once() == [0, 1, 2, 3]

    def test_take_is_fifo(self):
        admission = AdmissionController(AdmissionPolicy(max_queue_depth=4))
        for i in range(3):
            admission.offer(i)
        assert [admission.take(timeout=0.0) for _ in range(3)] == [0, 1, 2]
        assert admission.take(timeout=0.0) is None

    def test_take_frees_capacity(self):
        admission = AdmissionController(AdmissionPolicy(max_queue_depth=1))
        assert admission.offer("a") is None
        assert admission.offer("b").reason == REJECT_QUEUE_FULL
        assert admission.take(timeout=0.0) == "a"
        assert admission.offer("c") is None

    def test_close_sheds_draining(self):
        admission = AdmissionController(AdmissionPolicy(max_queue_depth=4))
        admission.offer("queued")
        admission.close()
        rejected = admission.offer("late")
        assert rejected.reason == REJECT_DRAINING
        # What was already queued is still drainable.
        assert admission.drain() == ["queued"]
        assert admission.depth() == 0

    def test_drain_atomically_empties(self):
        admission = AdmissionController(AdmissionPolicy(max_queue_depth=8))
        for i in range(5):
            admission.offer(i)
        assert admission.drain() == [0, 1, 2, 3, 4]
        assert admission.drain() == []


class TestBulkhead:
    def test_limit_validation(self):
        with pytest.raises(ValueError, match="limit"):
            Bulkhead(limit=0)

    def test_sheds_past_limit(self):
        bulkhead = Bulkhead(limit=2)
        assert bulkhead.try_acquire() is None
        assert bulkhead.try_acquire() is None
        rejected = bulkhead.try_acquire()
        assert rejected is not None and rejected.reason == REJECT_BULKHEAD
        bulkhead.release()
        assert bulkhead.try_acquire() is None

    def test_slot_context_releases(self):
        bulkhead = Bulkhead(limit=1)
        with bulkhead.slot() as rejected:
            assert rejected is None
            assert bulkhead.in_flight() == 1
            with bulkhead.slot() as nested:
                assert nested is not None
        assert bulkhead.in_flight() == 0

    def test_unbalanced_release_raises(self):
        with pytest.raises(RuntimeError, match="without a matching acquire"):
            Bulkhead(limit=1).release()


class TestRejected:
    def test_str_with_and_without_detail(self):
        assert str(Rejected("queue_full")) == "rejected (queue_full)"
        assert (
            str(Rejected("queue_full", "depth 8 at capacity 8"))
            == "rejected (queue_full): depth 8 at capacity 8"
        )


# --- supervision -------------------------------------------------------------


class TestRecyclePolicy:
    def test_truth_table(self):
        policy = RecyclePolicy(on_unhealthy=True, on_resize=True)
        assert not policy.should_recycle(healthy=True, resized=False)
        assert policy.should_recycle(healthy=False, resized=False)
        assert policy.should_recycle(healthy=True, resized=True)
        assert policy.should_recycle(healthy=False, resized=True)

    def test_disabled_conditions(self):
        lax = RecyclePolicy(on_unhealthy=False, on_resize=False)
        assert not lax.should_recycle(healthy=False, resized=True)


class TestRestartBackoff:
    def test_paces_crash_loop_and_clamps_at_cap(self):
        clock = ManualClock()
        policy = RetryPolicy(
            attempts=4, base_delay=1.0, multiplier=2.0, jitter_frac=0.0
        )
        backoff = RestartBackoff(policy, clock=clock)
        delays = [backoff.record_failure() for _ in range(5)]
        # Three scheduled delays, then the last one repeats forever —
        # a supervisor never gives up, it settles at the capped pace.
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]
        assert clock.sleeps == delays
        assert backoff.restarts == 5
        assert backoff.consecutive == 5

    def test_success_resets_the_streak(self):
        clock = ManualClock()
        policy = RetryPolicy(
            attempts=3, base_delay=1.0, multiplier=2.0, jitter_frac=0.0
        )
        backoff = RestartBackoff(policy, clock=clock)
        backoff.record_failure()
        backoff.record_failure()
        backoff.record_success()
        assert backoff.consecutive == 0
        assert backoff.record_failure() == 1.0  # back to the base delay
        assert backoff.restarts == 3  # lifetime counter keeps counting

    def test_zero_delay_policy_never_touches_the_clock(self):
        clock = ManualClock()
        backoff = RestartBackoff(
            RetryPolicy(attempts=1, base_delay=0.0), clock=clock
        )
        assert backoff.record_failure() == 0.0
        assert clock.sleeps == []
