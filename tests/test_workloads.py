"""Tests for repro.workloads — traces, generators, SPEC profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.spec import PROFILES, all_benchmarks, build_trace
from repro.workloads.synthetic import (
    hotspot_trace,
    pointer_chase_trace,
    streaming_trace,
    uniform_trace,
    zipf_trace,
)
from repro.workloads.trace import Trace


class TestTrace:
    def _trace(self):
        return Trace(
            "t",
            np.array([True, False, True]),
            np.array([1, 2, 1], dtype=np.int64),
            np.array([3, 0, 5], dtype=np.int32),
        )

    def test_lengths_validated(self):
        with pytest.raises(ValueError, match="equal length"):
            Trace("t", np.array([True]), np.array([1, 2]), np.array([0]))

    def test_negative_gaps_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Trace(
                "t",
                np.array([True]),
                np.array([1], dtype=np.int64),
                np.array([-1], dtype=np.int32),
            )

    def test_counts(self):
        trace = self._trace()
        assert len(trace) == 3
        assert trace.num_stores == 2
        assert trace.num_loads == 1
        assert trace.instructions == 3 + 8

    def test_store_density(self):
        trace = self._trace()
        assert trace.stores_per_kilo_instructions == pytest.approx(
            2000 / 11
        )

    def test_iter_ops_order_and_types(self):
        ops = list(self._trace().iter_ops())
        assert ops == [(True, 1, 3), (False, 2, 0), (True, 1, 5)]

    def test_head(self):
        head = self._trace().head(2)
        assert len(head) == 2
        assert head.num_stores == 1

    def test_concat(self):
        trace = self._trace()
        joined = trace.concat(trace)
        assert len(joined) == 6
        assert joined.instructions == 2 * trace.instructions

    def test_save_load_roundtrip(self, tmp_path):
        trace = self._trace()
        path = str(tmp_path / "t.npz")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "t"
        assert list(loaded.iter_ops()) == list(trace.iter_ops())

    def test_from_ops(self):
        trace = Trace.from_ops("x", iter([(True, 5, 2), (False, 6, 0)]))
        assert len(trace) == 2
        assert trace.num_stores == 1

    def test_from_ops_empty(self):
        trace = Trace.from_ops("x", iter([]))
        assert len(trace) == 0
        assert trace.instructions == 0


class TestGenerators:
    def test_zipf_deterministic_under_seed(self):
        a = zipf_trace(500, 100, seed=3)
        b = zipf_trace(500, 100, seed=3)
        assert np.array_equal(a.block_addr, b.block_addr)
        c = zipf_trace(500, 100, seed=4)
        assert not np.array_equal(a.block_addr, c.block_addr)

    def test_zipf_respects_working_set(self):
        trace = zipf_trace(1000, working_set_blocks=50, seed=1)
        assert trace.block_addr.max() < 50
        assert trace.block_addr.min() >= 0

    def test_zipf_burst_creates_runs(self):
        trace = zipf_trace(
            1000, 1000, store_fraction=1.0, burst_length=4, seed=1
        )
        # All-store anchors with burst 4: consecutive equal addresses.
        repeats = (trace.block_addr[1:] == trace.block_addr[:-1]).mean()
        assert repeats > 0.5

    def test_zipf_store_fraction_zero_and_one(self):
        assert zipf_trace(200, 10, store_fraction=0.0, seed=1).num_stores == 0
        assert zipf_trace(200, 10, store_fraction=1.0, seed=1).num_loads == 0

    def test_zipf_invalid_params(self):
        with pytest.raises(ValueError):
            zipf_trace(10, 10, store_fraction=1.5)
        with pytest.raises(ValueError):
            zipf_trace(10, 10, burst_length=0)
        with pytest.raises(ValueError):
            zipf_trace(10, 0)

    def test_streaming_sequential_addresses(self):
        trace = streaming_trace(100, touches_per_block=4, seed=1)
        diffs = np.diff(trace.block_addr)
        assert set(diffs.tolist()) <= {0, 1}

    def test_streaming_write_blocks_all_stores(self):
        trace = streaming_trace(
            400, touches_per_block=4, write_block_fraction=1.0, seed=1
        )
        assert trace.num_loads == 0

    def test_streaming_invalid_params(self):
        with pytest.raises(ValueError):
            streaming_trace(10, touches_per_block=0)
        with pytest.raises(ValueError):
            streaming_trace(10, write_block_fraction=2.0)

    def test_hotspot_concentrates_references(self):
        trace = hotspot_trace(
            2000, hot_blocks=10, cold_blocks=10_000, hot_fraction=0.9, seed=1
        )
        hot_share = (trace.block_addr < 10).mean()
        assert 0.8 < hot_share < 1.0

    def test_hotspot_burst(self):
        trace = hotspot_trace(
            1000,
            hot_blocks=10,
            cold_blocks=100,
            store_fraction=1.0,
            burst_length=4,
            seed=1,
        )
        repeats = (trace.block_addr[1:] == trace.block_addr[:-1]).mean()
        assert repeats > 0.5

    def test_hotspot_invalid_params(self):
        with pytest.raises(ValueError):
            hotspot_trace(10, 1, 1, hot_fraction=1.5)
        with pytest.raises(ValueError):
            hotspot_trace(10, 1, 1, burst_length=0)

    def test_pointer_chase_is_load_heavy(self):
        trace = pointer_chase_trace(1000, 500, store_fraction=0.1, seed=1)
        assert trace.num_loads > trace.num_stores

    def test_uniform_spreads_addresses(self):
        trace = uniform_trace(2000, working_set_blocks=100, seed=1)
        assert len(np.unique(trace.block_addr)) > 80

    def test_base_block_offsets_addresses(self):
        trace = uniform_trace(100, 10, seed=1, base_block=1000)
        assert trace.block_addr.min() >= 1000

    @given(st.integers(1, 300), st.integers(1, 50))
    @settings(max_examples=20, deadline=None)
    def test_generators_honour_num_ops(self, num_ops, working_set):
        assert len(zipf_trace(num_ops, working_set, seed=1)) == num_ops
        assert len(uniform_trace(num_ops, working_set, seed=1)) == num_ops


class TestSpecProfiles:
    def test_eighteen_benchmarks(self):
        assert len(all_benchmarks()) == 18

    def test_paper_quoted_benchmarks_present(self):
        for name in ("gamess", "povray", "astar", "bwaves", "gobmk"):
            assert name in PROFILES

    def test_every_profile_builds(self):
        for name in all_benchmarks():
            trace = build_trace(name, 500, seed=2)
            assert len(trace) == 500
            assert trace.name == name

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="available"):
            build_trace("nonexistent", 100)

    def test_profiles_deterministic(self):
        a = build_trace("gamess", 1000, seed=1)
        b = build_trace("gamess", 1000, seed=1)
        assert np.array_equal(a.block_addr, b.block_addr)

    def test_gamess_matches_paper_characterization(self):
        """Sec. VI-B: gamess has PPTI ~47.4 and NWPE ~2.1 at 32 entries."""
        from repro.core.simulator import SecurePersistencySimulator

        trace = build_trace("gamess", 40_000, seed=1)
        result = SecurePersistencySimulator(scheme=None).run(trace)
        assert 35 < result.stats["ppti"] < 75
        assert 1.7 < result.stats["nwpe"] < 2.6

    def test_povray_matches_paper_characterization(self):
        """Sec. VI-B: povray has PPTI ~38.8 and NWPE ~17.6."""
        from repro.core.simulator import SecurePersistencySimulator

        trace = build_trace("povray", 40_000, seed=1)
        result = SecurePersistencySimulator(scheme=None).run(trace)
        assert 28 < result.stats["ppti"] < 52
        assert 12 < result.stats["nwpe"] < 24

    def test_bwaves_nwpe_insensitive_to_capacity(self):
        """Sec. VI-D: bwaves' NWPE barely moves with SecPB size."""
        from repro.core.simulator import SecurePersistencySimulator
        from repro.sim.config import SystemConfig

        trace = build_trace("bwaves", 20_000, seed=1)
        nwpes = []
        for entries in (8, 512):
            sim = SecurePersistencySimulator(
                config=SystemConfig().with_secpb_entries(entries), scheme=None
            )
            nwpes.append(sim.run(trace).stats["nwpe"])
        assert nwpes[1] / nwpes[0] < 1.3
