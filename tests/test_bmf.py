"""Tests for repro.security.bmf — Bonsai Merkle Forests (DBMF/SBMF)."""

import pytest

from repro.security.bmf import (
    ForestTimingModel,
    MerkleForest,
    RootCache,
    make_dbmf,
    make_sbmf,
)
from repro.security.bmt import BonsaiMerkleTree

KEY = b"integrity-key-0123456789abcdef--"


def tree(height=8, arity=2):
    return BonsaiMerkleTree(KEY, height=height, arity=arity)


class TestRootCache:
    def test_hit_after_install(self):
        cache = RootCache(capacity_bytes=64)  # 2 roots
        hit, evicted = cache.touch(1)
        assert not hit and evicted is None
        hit, _ = cache.touch(1)
        assert hit

    def test_lru_eviction(self):
        cache = RootCache(capacity_bytes=64)  # 2 roots
        cache.touch(1)
        cache.touch(2)
        cache.touch(1)  # 1 is MRU
        _, evicted = cache.touch(3)
        assert evicted == 2

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            RootCache(capacity_bytes=8)

    def test_default_capacity_is_128_roots(self):
        assert RootCache().capacity == 128

    def test_contains_and_len(self):
        cache = RootCache()
        cache.touch(5)
        assert 5 in cache
        assert len(cache) == 1


class TestMerkleForest:
    def test_invalid_cut_rejected(self):
        with pytest.raises(ValueError):
            MerkleForest(tree(height=4), cut_height=5)
        with pytest.raises(ValueError):
            MerkleForest(tree(height=4), cut_height=0)

    def test_hit_costs_cut_height(self):
        forest = MerkleForest(tree(height=8, arity=2), cut_height=2)
        forest.update_leaf(0, b"warm")  # install subtree root
        result = forest.update_leaf(1, b"x")  # same subtree (leaves 0-3)
        assert result.root_cache_hit
        assert result.levels_hashed == 2

    def test_miss_costs_full_height(self):
        forest = MerkleForest(tree(height=8, arity=2), cut_height=2)
        result = forest.update_leaf(0, b"cold")
        assert not result.root_cache_hit
        assert result.levels_hashed == 8

    def test_eviction_adds_foldback_cost(self):
        # 2-root cache; three distinct subtrees force an eviction.
        forest = MerkleForest(
            tree(height=8, arity=2), cut_height=2, root_cache_bytes=64
        )
        forest.update_leaf(0, b"a")   # subtree 0
        forest.update_leaf(4, b"b")   # subtree 1
        result = forest.update_leaf(8, b"c")  # subtree 2: evicts subtree 0
        assert not result.root_cache_hit
        assert result.levels_hashed == 8 + (8 - 2)

    def test_functional_integrity_unchanged(self):
        """BMF is a timing optimization: global-root verification still
        works exactly as in the plain BMT."""
        forest = MerkleForest(tree(height=8, arity=2), cut_height=2)
        forest.update_leaf(3, b"v1")
        assert forest.verify_leaf(3, b"v1")
        forest.update_leaf(3, b"v2")
        assert not forest.verify_leaf(3, b"v1")
        assert forest.verify_leaf(3, b"v2")

    def test_subtree_of(self):
        forest = MerkleForest(tree(height=8, arity=2), cut_height=2)
        assert forest.subtree_of(0) == 0
        assert forest.subtree_of(3) == 0
        assert forest.subtree_of(4) == 1


class TestFactories:
    def test_dbmf_cut_is_2(self):
        assert make_dbmf(tree()).cut_height == 2

    def test_sbmf_cut_is_5(self):
        assert make_sbmf(tree()).cut_height == 5


class TestForestTimingModel:
    def test_invalid_cut_rejected(self):
        with pytest.raises(ValueError):
            ForestTimingModel(full_height=8, cut_height=9)

    def test_hit_and_miss_levels(self):
        model = ForestTimingModel(full_height=8, cut_height=2, subtree_leaf_pages=4)
        assert model.levels(0) == 8  # cold miss
        assert model.levels(1) == 2  # same subtree: hit
        assert model.levels(3) == 2

    def test_eviction_foldback(self):
        model = ForestTimingModel(
            full_height=8, cut_height=5, subtree_leaf_pages=1, root_cache_bytes=64
        )
        model.levels(0)
        model.levels(1)
        assert model.levels(2) == 8 + 3  # evicts subtree 0, folds it back

    def test_steady_state_dbmf_is_cheap(self):
        """With a working set inside the root cache, almost every update
        costs only the cut height — the Fig. 9 speedup mechanism."""
        model = ForestTimingModel(full_height=8, cut_height=2)
        model.levels(0)
        costs = [model.levels(i % 50) for i in range(500)]
        assert sum(costs) / len(costs) < 3.0
