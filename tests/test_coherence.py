"""Tests for repro.core.coherence — multi-SecPB directory and migration."""

import pytest

from repro.core.coherence import CoherenceError, SecPBDirectory
from repro.core.schemes import COBCM, NOGAP, MetadataStep, get_scheme
from repro.core.secpb import SecPB
from repro.sim.config import SecPBConfig


def make_directory(cores=2, scheme=NOGAP, entries=8):
    secpbs = [SecPB(SecPBConfig(entries=entries), scheme) for _ in range(cores)]
    return SecPBDirectory(secpbs, scheme)


class TestOwnership:
    def test_local_write_claims_ownership(self):
        directory = make_directory()
        directory.local_write(0, 0x10, b"a" * 64)
        assert directory.owner_of(0x10) == 0
        directory.check_no_replication()

    def test_no_owner_initially(self):
        assert make_directory().owner_of(0x10) is None

    def test_empty_directory_rejected(self):
        with pytest.raises(ValueError):
            SecPBDirectory([], NOGAP)

    def test_invalid_core_rejected(self):
        directory = make_directory(cores=2)
        with pytest.raises(IndexError):
            directory.local_write(5, 0x10)


class TestRemoteWrite:
    def test_write_migrates_entry(self):
        """Sec. IV-C: a remote write migrates the entry; no replication."""
        directory = make_directory()
        directory.local_write(0, 0x10, b"a" * 64)
        directory.local_write(1, 0x10, b"b" * 64)
        assert directory.owner_of(0x10) == 1
        assert directory.secpbs[0].lookup(0x10) is None
        entry = directory.secpbs[1].lookup(0x10)
        assert entry.plaintext == b"b" * 64
        directory.check_no_replication()

    def test_migration_preserves_value_independent_metadata(self):
        """The requesting core does not redo counter/OTP/BMT (Sec. IV-C-c)."""
        directory = make_directory(scheme=NOGAP)
        entry = directory.local_write(0, 0x10, b"a" * 64)
        for step in MetadataStep:
            entry.mark(step)
        report = directory.migrate(0x10, to_core=1)
        migrated = directory.secpbs[1].lookup(0x10)
        assert migrated.is_marked(MetadataStep.COUNTER)
        assert migrated.is_marked(MetadataStep.OTP)
        assert migrated.is_marked(MetadataStep.BMT_ROOT)
        assert not migrated.is_marked(MetadataStep.CIPHERTEXT)
        assert not migrated.is_marked(MetadataStep.MAC)
        assert not report.value_independent_recomputed
        assert report.value_dependent_recomputed  # NoGap is eager on Dc/M

    def test_lazy_scheme_migration_needs_no_recompute(self):
        directory = make_directory(scheme=COBCM)
        directory.local_write(0, 0x10, b"a" * 64)
        report = directory.migrate(0x10, to_core=1)
        assert not report.value_dependent_recomputed

    def test_migrate_unowned_block_rejected(self):
        with pytest.raises(CoherenceError, match="no SecPB owns"):
            make_directory().migrate(0x10, to_core=1)

    def test_migrate_to_current_owner_rejected(self):
        directory = make_directory()
        directory.local_write(0, 0x10)
        with pytest.raises(CoherenceError, match="already owned"):
            directory.migrate(0x10, to_core=0)

    def test_migration_into_full_secpb_drains_first(self):
        directory = make_directory(entries=2)
        directory.local_write(0, 0x10, b"a" * 64)
        directory.local_write(1, 0x20)
        directory.local_write(1, 0x30)
        directory.migrate(0x10, to_core=1)
        assert directory.secpbs[1].occupancy == 2
        assert directory.stats.get("coherence.migration_drains") == 1

    def test_migration_accumulates_write_counts(self):
        directory = make_directory()
        directory.local_write(0, 0x10, b"a" * 64)
        directory.local_write(0, 0x10, b"b" * 64)
        directory.local_write(1, 0x10, b"c" * 64)
        entry = directory.secpbs[1].lookup(0x10)
        assert entry.writes == 3


class TestRemoteRead:
    def test_read_flushes_owner_entry(self):
        """Sec. IV-C: a remote read flushes the entry to PM and forwards
        the data; the block leaves the SecPB domain."""
        directory = make_directory()
        directory.local_write(0, 0x10, b"z" * 64)
        data = directory.remote_read(1, 0x10)
        assert data == b"z" * 64
        assert directory.owner_of(0x10) is None
        assert directory.secpbs[0].lookup(0x10) is None
        assert directory.stats.get("coherence.read_flushes") == 1

    def test_read_of_unowned_block_is_noop(self):
        directory = make_directory()
        assert directory.remote_read(1, 0x10) is None

    def test_owner_reading_own_block_is_noop(self):
        directory = make_directory()
        directory.local_write(0, 0x10, b"z" * 64)
        assert directory.remote_read(0, 0x10) is None
        assert directory.owner_of(0x10) == 0


class TestReplicationAudit:
    def test_audit_detects_manual_replication(self):
        directory = make_directory()
        directory.secpbs[0].write(0x10)
        directory.secpbs[1].write(0x10)
        with pytest.raises(CoherenceError, match="replicated"):
            directory.check_no_replication()

    def test_audit_detects_directory_mismatch(self):
        directory = make_directory()
        directory.local_write(0, 0x10)
        directory.secpbs[0].remove(0x10)
        with pytest.raises(CoherenceError, match="directory"):
            directory.check_no_replication()

    def test_stress_many_writers_no_replication(self):
        directory = make_directory(cores=4, entries=16)
        import random

        rng = random.Random(42)
        for _ in range(300):
            core = rng.randrange(4)
            addr = rng.randrange(40)
            if rng.random() < 0.2:
                directory.remote_read(core, addr)
            else:
                directory.local_write(core, addr, bytes([addr]) * 64)
        directory.check_no_replication()
