"""Campaign graders that catch fault exceptions (planted fixtures)."""

import logging

from ..fault.inject import CrashVerdictError, verify_recovery

logger = logging.getLogger(__name__)


def grade(state):
    # SPB901: the crash-verdict failure signal dies here.
    try:
        verify_recovery(state)
    except CrashVerdictError:
        return "pass"
    return "pass"


def grade_loud(state):
    # Clean: the handler logs before degrading.
    try:
        verify_recovery(state)
    except CrashVerdictError:
        logger.exception("recovery verification failed")
        return "fail"
    return "pass"
