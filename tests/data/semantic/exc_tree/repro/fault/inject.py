"""Fault machinery that raises on divergence (planted fixtures)."""


class CrashVerdictError(Exception):
    pass


def verify_recovery(state):
    if not state:
        raise CrashVerdictError("recovery left no state")
    return state
