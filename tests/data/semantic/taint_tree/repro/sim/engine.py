"""Simulation-scope consumers of laundered nondeterminism (fixtures)."""

import time

from ..util.clock import run_mode, timestamp
from ..util.collections import dedupe


def stamp_result(result):
    # SPB701: wall-clock taint two project hops away
    # (timestamp -> read_clock -> time.time()).
    result["t"] = timestamp()
    return result


def direct_stamp(result):
    # SPB102 only: a direct primitive call resolves to the stdlib, so
    # the interprocedural rule must NOT double-report this line.
    result["t"] = time.time()
    return result


def pick_mode():
    # SPB703: environment read laundered through repro.util.clock.
    return run_mode()


def order_events(events):
    # SPB704: a helper materializes set iteration order.
    return dedupe(events)


def sorted_events(events):
    # Clean: sorted() sanitizes set order.
    return sorted(set(events))
