"""Helpers that launder nondeterminism (planted lint-fixture bugs)."""

import os
import time


def read_clock():
    return time.time()


def timestamp():
    # Second hop: the wall-clock value passes through another helper
    # before any simulation code sees it.
    return read_clock()


def run_mode():
    return os.environ.get("SECPB_MODE", "strict")
