"""Order-sensitive helpers (planted lint-fixture bugs)."""


def dedupe(items):
    unique = set(items)
    return list(unique)
