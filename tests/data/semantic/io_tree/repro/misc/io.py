"""Write helpers outside the durability package (planted fixtures)."""

import json


def dump_json(payload, path):
    with open(path, "w") as handle:
        json.dump(payload, handle)
