"""Report writers in analysis scope (planted fixtures)."""

from ..durability.artifacts import leaky_write, write_artifact
from ..misc.io import dump_json


def save_report(payload, path):
    # SPB802: json.dump laundered through repro.misc.io.
    dump_json(payload, path)


def save_leaky(payload, path):
    # SPB802: reaches a raw write via a non-sanctioned durability helper.
    leaky_write(path, str(payload))


def save_clean(payload, path):
    # Clean: routed through the sanctioned writer.
    write_artifact(path, str(payload))
