"""Durability writers: one sanctioned, one leaky (planted fixtures)."""


def _raw(path, data):
    path.write_text(data)


def write_artifact(path, data):
    # Sanctioned surface: raw writes behind it are the design intent.
    _raw(path, data)


def leaky_write(path, data):
    # SPB801: a raw write reachable from outside repro.durability
    # without passing a sanctioned writer.
    _raw2(path, data)


def _raw2(path, data):
    path.write_text(data)
