"""Tests for repro.core.controller — eager-step pricing and drain pricing."""

import pytest

from repro.core.controller import SecPBController, TimingCalibration
from repro.core.schemes import SCHEMES, SPECTRUM_ORDER, get_scheme
from repro.core.secpb import SecPBEntry
from repro.security.metadata_cache import MetadataCaches
from repro.sim.config import SystemConfig


def controller(scheme_name, bmt_levels_fn=None, config=None):
    config = config if config is not None else SystemConfig()
    return SecPBController(
        config,
        get_scheme(scheme_name),
        MetadataCaches(config),
        bmt_levels_fn=bmt_levels_fn,
    )


def warm_new_entry(ctl, block_addr=0, now=0.0):
    """Price a new entry with a warm counter cache (steady state)."""
    ctl.mdc.access_counter(block_addr // 64)
    entry = SecPBEntry(block_addr)
    return ctl.price_new_entry(now, block_addr, entry), entry


class TestNewEntryLatencyOrdering:
    def test_eagerness_orders_unblock_latency(self):
        """More eager schemes take longer to raise the unblocking signal —
        the essence of Table IV."""
        latencies = {}
        for name in SPECTRUM_ORDER:
            timing, _ = warm_new_entry(controller(name))
            latencies[name] = timing.unblock_cycles
        assert (
            latencies["cobcm"]
            <= latencies["obcm"]
            <= latencies["bcm"]
            <= latencies["cm"]
            <= latencies["m"]
            <= latencies["nogap"]
        )
        assert latencies["cobcm"] == 0.0
        assert latencies["nogap"] > 320

    def test_cobcm_pays_nothing_early(self):
        timing, entry = warm_new_entry(controller("cobcm"))
        assert timing.unblock_cycles == 0.0
        assert not any(entry.valid.values())

    def test_obcm_pays_counter_plus_double_access(self):
        timing, entry = warm_new_entry(controller("obcm"))
        # warm CTR$ hit (2) + increment (1) + second SecPB access (2)
        assert timing.unblock_cycles == 5.0
        assert entry.valid["C"]

    def test_bcm_adds_aes_latency(self):
        timing, _ = warm_new_entry(controller("bcm"))
        obcm_timing, _ = warm_new_entry(controller("obcm"))
        assert timing.unblock_cycles == pytest.approx(
            obcm_timing.unblock_cycles - 2 + 40
        )

    def test_cm_exposes_bmt_root_update(self):
        """BCM -> CM is the paper's biggest jump: 8 x 40 cycles of BMT."""
        bcm_timing, _ = warm_new_entry(controller("bcm"))
        cm_timing, _ = warm_new_entry(controller("cm"))
        assert cm_timing.unblock_cycles - bcm_timing.unblock_cycles >= 320 - 40

    def test_m_adds_one_xor_cycle(self):
        cm_timing, _ = warm_new_entry(controller("cm"))
        m_timing, _ = warm_new_entry(controller("m"))
        assert m_timing.unblock_cycles == cm_timing.unblock_cycles + 1

    def test_nogap_adds_mac_latency(self):
        m_timing, _ = warm_new_entry(controller("m"))
        nogap_timing, _ = warm_new_entry(controller("nogap"))
        assert nogap_timing.unblock_cycles == m_timing.unblock_cycles + 40

    def test_counter_miss_flag(self):
        ctl = controller("obcm")
        entry = SecPBEntry(0)
        timing = ctl.price_new_entry(0.0, 0, entry)  # cold CTR$
        assert timing.counter_miss
        assert timing.unblock_cycles > 200


class TestOncePerResidencyOptimization:
    def test_coalesced_store_skips_value_independent_steps(self):
        """Sec. IV-A: counter/OTP/BMT run once per residency, so a
        coalesced store under CM is (almost) free."""
        ctl = controller("cm")
        entry = SecPBEntry(0)
        timing = ctl.price_coalesced_store(0.0, entry)
        assert timing.unblock_cycles == 0.0

    def test_coalesced_store_nogap_pays_mac(self):
        ctl = controller("nogap")
        entry = SecPBEntry(0)
        timing = ctl.price_coalesced_store(0.0, entry)
        assert timing.unblock_cycles >= ctl.calibration.xor_cycles

    def test_bmt_updates_counted_once_per_entry(self):
        ctl = controller("cm")
        warm_new_entry(ctl, block_addr=0)
        ctl.price_coalesced_store(0.0, SecPBEntry(0))
        assert ctl.stats.get("bmt.root_updates") == 1


class TestBmtEngineSerialization:
    def test_single_in_flight_bmt_update(self):
        """Sec. VI-B: the system is constrained to one in-flight BMT
        update; back-to-back new entries queue."""
        ctl = controller("cm")
        first, _ = warm_new_entry(ctl, block_addr=0, now=0.0)
        second, _ = warm_new_entry(ctl, block_addr=64, now=0.0)
        assert second.bmt_wait_cycles >= 320

    def test_bmf_hook_reduces_levels(self):
        full = controller("cm")
        dbmf = controller("cm", bmt_levels_fn=lambda page: 2)
        t_full, _ = warm_new_entry(full)
        t_dbmf, _ = warm_new_entry(dbmf)
        assert t_dbmf.unblock_cycles < t_full.unblock_cycles
        assert t_full.unblock_cycles - t_dbmf.unblock_cycles >= 6 * 40 - 40


class TestDrainPricing:
    def test_lazier_schemes_drain_slower(self):
        """Late steps move to the drain path: COBCM's drain does the most
        MC-side work."""
        services = {}
        for name in SPECTRUM_ORDER:
            ctl = controller(name)
            ctl.mdc.access_counter(0)  # warm
            services[name] = ctl.price_drain(0)
        assert (
            services["nogap"]
            <= services["m"]
            <= services["cm"]
            <= services["bcm"]
            <= services["obcm"]
            <= services["cobcm"]
        )

    def test_nogap_drain_is_transfer_only(self):
        ctl = controller("nogap")
        cal = ctl.calibration
        assert ctl.price_drain(0) == cal.drain_transfer_cycles

    def test_late_bmt_updates_counted_at_drain(self):
        ctl = controller("cobcm")
        ctl.price_drain(0)
        ctl.price_drain(64)
        assert ctl.stats.get("bmt.root_updates") == 2

    def test_drain_uses_forest_levels(self):
        flat = controller("cobcm", bmt_levels_fn=lambda page: 2)
        full = controller("cobcm")
        assert flat.price_drain(0) < full.price_drain(0)


class TestCalibrationDefaults:
    def test_calibration_is_frozen(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            TimingCalibration().cpi_base = 1.0

    def test_custom_calibration_respected(self):
        cal = TimingCalibration(xor_cycles=10)
        config = SystemConfig()
        ctl = SecPBController(
            config, get_scheme("m"), MetadataCaches(config), calibration=cal
        )
        ctl.mdc.access_counter(0)
        entry = SecPBEntry(0)
        timing_m = ctl.price_new_entry(0.0, 0, entry)
        assert timing_m.unblock_cycles >= 320 + 10
