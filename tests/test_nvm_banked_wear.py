"""Tests for repro.sim.nvm_banked and repro.sim.wear."""

import numpy as np
import pytest

from repro.sim.nvm_banked import BankedNVM, BankedNVMParams
from repro.sim.wear import StartGapWearLeveler, simulate_wear


class TestBankedNVMParams:
    def test_invalid_banks(self):
        with pytest.raises(ValueError):
            BankedNVMParams(banks=0)

    def test_invalid_watermarks(self):
        with pytest.raises(ValueError):
            BankedNVMParams(write_high_watermark=0.3, write_low_watermark=0.5)


class TestBankedNVM:
    def test_latencies_from_table1(self):
        nvm = BankedNVM()
        assert nvm.read_cycles == 220
        assert nvm.write_cycles == 600

    def test_single_bank_serializes(self):
        nvm = BankedNVM(params=BankedNVMParams(banks=1))
        _, c1 = nvm.read(0.0, 0)
        wait, c2 = nvm.read(0.0, 1)
        assert c1 == 220
        assert wait == 220
        assert c2 == 440

    def test_different_banks_parallel(self):
        nvm = BankedNVM(params=BankedNVMParams(banks=4))
        _, c1 = nvm.read(0.0, 0)
        wait, c2 = nvm.read(0.0, 1)  # different bank
        assert wait == 0
        assert c1 == c2 == 220

    def test_write_acceptance_immediate_until_queue_full(self):
        nvm = BankedNVM(params=BankedNVMParams(banks=1))
        waits = [nvm.write(0.0, i)[0] for i in range(128)]
        assert all(w == 0.0 for w in waits)
        wait, _ = nvm.write(0.0, 999)
        assert wait > 0.0
        assert nvm.stats.get("bnvm.write_queue_stalls") == 1

    def test_read_priority_yields_under_write_pressure(self):
        nvm = BankedNVM(params=BankedNVMParams(banks=1))
        for i in range(110):  # > 0.8 * 128 watermark
            nvm.write(0.0, i)
        nvm.read(0.0, 0)
        assert nvm.stats.get("bnvm.read_blocked_by_writes") == 1

    def test_sustained_write_bandwidth(self):
        nvm = BankedNVM(params=BankedNVMParams(banks=16))
        assert nvm.sustained_write_bandwidth() == pytest.approx(16 / 600)

    def test_banked_bandwidth_covers_secpb_drain_rate(self):
        """The abstraction check: worst-suite drain demand (gamess, PPTI
        ~50/ki at ~1 kc/ki -> 0.05 blocks/cycle) stays under the banked
        device's sustained write bandwidth."""
        demand_blocks_per_cycle = 0.05
        assert BankedNVM().sustained_write_bandwidth() > demand_blocks_per_cycle * 0.5


class TestStartGap:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StartGapWearLeveler(0)
        with pytest.raises(ValueError):
            StartGapWearLeveler(10, psi=0)

    def test_mapping_is_a_permutation(self):
        leveler = StartGapWearLeveler(lines=10, psi=3)
        for _ in range(200):
            physical = {leveler.physical_of(i) for i in range(10)}
            assert len(physical) == 10
            assert leveler.gap not in physical
            leveler.write(0)

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            StartGapWearLeveler(4).physical_of(4)

    def test_gap_moves_every_psi_writes(self):
        leveler = StartGapWearLeveler(lines=8, psi=5)
        for _ in range(25):
            leveler.write(3)
        assert leveler.gap_moves == 5

    def test_hot_line_rotates_physically(self):
        """The same logical line lands on many physical slots over time."""
        leveler = StartGapWearLeveler(lines=16, psi=2)
        slots = set()
        for _ in range(600):
            slots.add(leveler.write(7))
        assert len(slots) > 8

    def test_wear_flattening_on_skewed_stream(self):
        """Start-Gap must dramatically flatten a single-hot-line stream."""
        rng = np.random.default_rng(3)
        hot = [0] * 5000
        background = rng.integers(0, 64, size=1000).tolist()
        stream = hot + background
        rng.shuffle(stream)
        metrics = simulate_wear(stream, lines=64, psi=10)
        assert metrics["leveled_wear_ratio"] < 0.25 * metrics["raw_wear_ratio"]
        assert metrics["leveled_max_writes"] < 0.5 * metrics["raw_max_writes"]

    def test_write_overhead_is_one_over_psi(self):
        metrics = simulate_wear(list(range(1000)), lines=64, psi=100)
        assert metrics["write_overhead"] == pytest.approx(0.01, abs=0.002)
