"""Tests for repro.core.secpb — the SecPB structure and drain policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schemes import CM, COBCM, NOGAP, MetadataStep
from repro.core.secpb import SecPB
from repro.sim.config import SecPBConfig


def make_secpb(entries=8, scheme=COBCM):
    return SecPB(SecPBConfig(entries=entries), scheme)


class TestWriteAndCoalesce:
    def test_first_write_allocates(self):
        pb = make_secpb()
        entry, allocated = pb.write(0x10)
        assert allocated
        assert entry.writes == 1
        assert pb.occupancy == 1

    def test_second_write_coalesces(self):
        pb = make_secpb()
        pb.write(0x10)
        entry, allocated = pb.write(0x10)
        assert not allocated
        assert entry.writes == 2
        assert pb.occupancy == 1

    def test_write_updates_plaintext(self):
        pb = make_secpb()
        pb.write(0x10, plaintext=b"a" * 64)
        entry, _ = pb.write(0x10, plaintext=b"b" * 64)
        assert entry.plaintext == b"b" * 64

    def test_coalescing_invalidates_value_dependent_metadata(self):
        """Sec. IV-A: Dc and M are stale after any new store; counters/OTP
        are not."""
        pb = make_secpb(scheme=NOGAP)
        entry, _ = pb.write(0x10)
        for step in MetadataStep:
            entry.mark(step)
        entry, _ = pb.write(0x10)
        assert not entry.is_marked(MetadataStep.CIPHERTEXT)
        assert not entry.is_marked(MetadataStep.MAC)
        assert entry.is_marked(MetadataStep.COUNTER)
        assert entry.is_marked(MetadataStep.OTP)
        assert entry.is_marked(MetadataStep.BMT_ROOT)

    def test_full_buffer_rejects_new_allocation(self):
        pb = make_secpb(entries=2)
        pb.write(1)
        pb.write(2)
        with pytest.raises(RuntimeError, match="SecPB full"):
            pb.write(3)

    def test_full_buffer_still_coalesces(self):
        pb = make_secpb(entries=2)
        pb.write(1)
        pb.write(2)
        _, allocated = pb.write(1)
        assert not allocated


class TestWatermarks:
    def test_above_high_watermark(self):
        pb = make_secpb(entries=8)  # high = 6, low = 3
        for i in range(5):
            pb.write(i)
        assert not pb.above_high_watermark
        pb.write(5)
        assert pb.above_high_watermark

    def test_drain_targets_reach_low_watermark(self):
        pb = make_secpb(entries=8)
        for i in range(6):
            pb.write(i)
        assert pb.drain_targets() == 6 - 3

    def test_drain_targets_zero_below_high(self):
        pb = make_secpb(entries=8)
        pb.write(0)
        assert pb.drain_targets() == 0


class TestDraining:
    def test_drain_oldest_is_fifo(self):
        pb = make_secpb()
        for i in (5, 3, 9):
            pb.write(i)
        assert pb.drain_oldest().block_addr == 5
        assert pb.drain_oldest().block_addr == 3

    def test_drain_empty_raises(self):
        with pytest.raises(RuntimeError, match="empty"):
            make_secpb().drain_oldest()

    def test_drain_all_returns_everything_in_order(self):
        pb = make_secpb()
        for i in range(5):
            pb.write(i)
        drained = pb.drain_all()
        assert [d.block_addr for d in drained] == list(range(5))
        assert pb.occupancy == 0

    def test_drained_entry_carries_write_count_and_data(self):
        pb = make_secpb()
        pb.write(7, plaintext=b"x" * 64)
        pb.write(7, plaintext=b"y" * 64)
        drained = pb.drain_oldest()
        assert drained.writes == 2
        assert drained.plaintext == b"y" * 64

    def test_metadata_completeness_reported(self):
        pb = make_secpb(scheme=CM)
        entry, _ = pb.write(1)
        assert not pb.drain_oldest().metadata_was_complete
        entry, _ = pb.write(2)
        entry.mark(MetadataStep.COUNTER)
        entry.mark(MetadataStep.OTP)
        entry.mark(MetadataStep.BMT_ROOT)
        assert pb.drain_oldest().metadata_was_complete


class TestDrainPolicies:
    def test_drain_process_only_touches_matching_asid(self):
        pb = make_secpb()
        pb.write(1, asid=1)
        pb.write(2, asid=2)
        pb.write(3, asid=1)
        drained = pb.drain_process(asid=1)
        assert sorted(d.block_addr for d in drained) == [1, 3]
        assert pb.occupancy == 1
        assert pb.lookup(2) is not None

    def test_drain_process_preserves_fifo_for_survivors(self):
        pb = make_secpb()
        pb.write(1, asid=1)
        pb.write(2, asid=2)
        pb.write(3, asid=2)
        pb.drain_process(asid=1)
        assert pb.drain_oldest().block_addr == 2

    def test_remove_for_coherence(self):
        pb = make_secpb()
        pb.write(1)
        entry = pb.remove(1)
        assert entry is not None
        assert pb.remove(1) is None
        assert pb.occupancy == 0


class TestStats:
    def test_counters(self):
        pb = make_secpb()
        pb.write(1)
        pb.write(1)
        pb.write(2)
        pb.drain_all()
        assert pb.stats.get("secpb.writes") == 3
        assert pb.stats.get("secpb.allocations") == 2
        assert pb.stats.get("secpb.drains") == 2


class TestPropertyBased:
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_never_exceeds_capacity_with_watermark_policy(self, writes):
        """Running the paper's drain policy over any write sequence keeps
        the buffer within capacity and conserves entries."""
        pb = make_secpb(entries=8)
        drained_total = 0
        for addr in writes:
            if pb.full and pb.lookup(addr) is None:
                pb.drain_oldest()
                drained_total += 1
            pb.write(addr)
            while pb.above_high_watermark:
                pb.drain_oldest()
                drained_total += 1
            assert pb.occupancy <= 8
        assert drained_total + pb.occupancy == pb.stats.get("secpb.allocations")

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_nwpe_accounting(self, writes):
        """Total writes recorded equals the input; NWPE >= 1."""
        pb = make_secpb(entries=8)
        for addr in writes:
            if pb.full and pb.lookup(addr) is None:
                pb.drain_oldest()
            pb.write(addr)
        assert pb.stats.get("secpb.writes") == len(writes)
        assert pb.stats.get("secpb.allocations") >= 1
        assert pb.stats.get("secpb.writes") >= pb.stats.get("secpb.allocations")
