"""Tests for repro.security.otp and repro.security.mac."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.mac import MacEngine, MacStore
from repro.security.otp import OTPEngine

KEY = b"0123456789abcdef0123456789abcdef"
blocks = st.binary(min_size=64, max_size=64)


class TestOTPEngine:
    def test_key_too_short_rejected(self):
        with pytest.raises(ValueError):
            OTPEngine(b"short")

    def test_encrypt_decrypt_roundtrip(self):
        otp = OTPEngine(KEY)
        plaintext = bytes(range(64))
        ciphertext = otp.encrypt_with_nonce(plaintext, 7, 0, 1)
        assert ciphertext != plaintext
        assert otp.decrypt_with_nonce(ciphertext, 7, 0, 1) == plaintext

    def test_wrong_counter_decrypts_garbage(self):
        """The recoverability gap failure mode: stale counter -> wrong
        plaintext."""
        otp = OTPEngine(KEY)
        plaintext = bytes(range(64))
        ciphertext = otp.encrypt_with_nonce(plaintext, 7, 0, 2)
        assert otp.decrypt_with_nonce(ciphertext, 7, 0, 1) != plaintext

    def test_wrong_address_decrypts_garbage(self):
        otp = OTPEngine(KEY)
        plaintext = bytes(range(64))
        ciphertext = otp.encrypt_with_nonce(plaintext, 7, 0, 1)
        assert otp.decrypt_with_nonce(ciphertext, 8, 0, 1) != plaintext

    def test_pad_bound_to_nonce(self):
        otp = OTPEngine(KEY)
        pad = otp.generate(3, 4, 5)
        assert (pad.block_addr, pad.major, pad.minor) == (3, 4, 5)

    def test_pads_generated_counted(self):
        otp = OTPEngine(KEY)
        otp.generate(0, 0, 0)
        otp.generate(0, 0, 1)
        assert otp.pads_generated == 2

    def test_encrypt_rejects_wrong_size(self):
        otp = OTPEngine(KEY)
        pad = otp.generate(0, 0, 0)
        with pytest.raises(ValueError):
            otp.encrypt(b"short", pad)

    @given(blocks, st.integers(0, 1000), st.integers(0, 63), st.integers(0, 127))
    @settings(max_examples=50)
    def test_roundtrip_property(self, plaintext, addr, major, minor):
        otp = OTPEngine(KEY)
        ciphertext = otp.encrypt_with_nonce(plaintext, addr, major, minor)
        assert otp.decrypt_with_nonce(ciphertext, addr, major, minor) == plaintext


class TestMacEngine:
    def test_key_too_short_rejected(self):
        with pytest.raises(ValueError):
            MacEngine(b"x")

    def test_verify_accepts_genuine(self):
        mac = MacEngine(KEY)
        ct = bytes(64)
        record = mac.compute(ct, 1, 0, 1)
        assert mac.verify(ct, 1, 0, 1, record.tag)

    def test_verify_rejects_tampered_ciphertext(self):
        mac = MacEngine(KEY)
        record = mac.compute(bytes(64), 1, 0, 1)
        tampered = b"\x01" + bytes(63)
        assert not mac.verify(tampered, 1, 0, 1, record.tag)

    def test_verify_rejects_spliced_address(self):
        """Splicing: same ciphertext + tag presented at another address."""
        mac = MacEngine(KEY)
        ct = bytes(range(64))
        record = mac.compute(ct, 1, 0, 1)
        assert not mac.verify(ct, 2, 0, 1, record.tag)

    def test_verify_rejects_replayed_counter(self):
        """Replay: old tag with a rolled-back counter value."""
        mac = MacEngine(KEY)
        ct = bytes(range(64))
        record = mac.compute(ct, 1, 0, 5)
        assert not mac.verify(ct, 1, 0, 4, record.tag)

    def test_macs_computed_counter(self):
        mac = MacEngine(KEY)
        mac.compute(bytes(64), 0, 0, 0)
        assert mac.macs_computed == 1

    @given(blocks, blocks)
    @settings(max_examples=30)
    def test_distinct_ciphertexts_distinct_tags(self, a, b):
        mac = MacEngine(KEY)
        if a != b:
            assert mac.compute(a, 0, 0, 0).tag != mac.compute(b, 0, 0, 0).tag


class TestMacStore:
    def test_put_get_drop(self):
        store = MacStore()
        record = MacEngine(KEY).compute(bytes(64), 9, 0, 0)
        store.put(record)
        assert store.get(9) is record
        store.drop(9)
        assert store.get(9) is None
        store.drop(9)  # idempotent

    def test_snapshot_restore(self):
        store = MacStore()
        engine = MacEngine(KEY)
        store.put(engine.compute(bytes(64), 1, 0, 0))
        snap = store.snapshot()
        store.put(engine.compute(bytes(64), 2, 0, 0))
        store.restore(snap)
        assert store.get(2) is None
        assert len(store) == 1
