"""Tests for repro.sim.stats — counters, derived metrics, aggregation."""

import pytest

from repro.sim.stats import (
    SimulationResult,
    StatsCollector,
    arithmetic_mean,
    geometric_mean,
    summarize_slowdowns,
)


class TestStatsCollector:
    def test_unset_counter_reads_zero(self):
        assert StatsCollector().get("nothing") == 0.0

    def test_add_accumulates(self):
        stats = StatsCollector()
        stats.add("x")
        stats.add("x", 2.5)
        assert stats.get("x") == 3.5

    def test_set_overwrites(self):
        stats = StatsCollector()
        stats.add("x", 10)
        stats.set("x", 1)
        assert stats.get("x") == 1

    def test_merge_folds_counters(self):
        a, b = StatsCollector(), StatsCollector()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_reset_clears_everything(self):
        stats = StatsCollector()
        stats.add("x", 5)
        stats.reset()
        assert stats.get("x") == 0.0
        assert stats.as_dict() == {}

    def test_ratio_handles_zero_denominator(self):
        stats = StatsCollector()
        stats.add("a", 5)
        assert stats.ratio("a", "b") == 0.0

    def test_ppti_definition(self):
        stats = StatsCollector()
        stats.set("instructions", 10_000)
        stats.set("secpb.allocations", 474)
        assert stats.ppti == pytest.approx(47.4)

    def test_ppti_zero_without_instructions(self):
        assert StatsCollector().ppti == 0.0

    def test_nwpe_definition(self):
        stats = StatsCollector()
        stats.set("secpb.writes", 210)
        stats.set("secpb.allocations", 100)
        assert stats.nwpe == pytest.approx(2.1)


class TestSimulationResult:
    def _result(self, cycles, instructions=1000, scheme="cm"):
        return SimulationResult(scheme, "bench", cycles, instructions)

    def test_ipc(self):
        assert self._result(2000).ipc == pytest.approx(0.5)

    def test_ipc_zero_cycles(self):
        assert self._result(0).ipc == 0.0

    def test_slowdown(self):
        base = self._result(1000, scheme="bbb")
        secure = self._result(1500)
        assert secure.slowdown_vs(base) == pytest.approx(1.5)
        assert secure.overhead_pct_vs(base) == pytest.approx(50.0)

    def test_slowdown_requires_equal_work(self):
        base = SimulationResult("bbb", "bench", 1000, 999)
        secure = self._result(1500)
        with pytest.raises(ValueError, match="equal work"):
            secure.slowdown_vs(base)

    def test_slowdown_rejects_zero_baseline(self):
        base = self._result(0, scheme="bbb")
        with pytest.raises(ValueError):
            self._result(10).slowdown_vs(base)


class TestMeans:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_identity(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_geometric_mean_long_vector_no_overflow(self):
        # 1e5 slowdowns of 10x: a naive running product reaches 1e100000
        # (inf in doubles); the log-space form must return exactly the
        # common value.
        values = [10.0] * 100_000
        assert geometric_mean(values) == pytest.approx(10.0, rel=1e-12)

    def test_geometric_mean_long_vector_no_underflow(self):
        values = [1e-3] * 100_000
        assert geometric_mean(values) == pytest.approx(1e-3, rel=1e-12)

    def test_geometric_mean_mixed_long_vector(self):
        # Alternating 4x and 0.25x slowdowns cancel to exactly 1.0 even
        # at lengths where the running product would have overflowed.
        values = [4.0, 0.25] * 50_000
        assert geometric_mean(values) == pytest.approx(1.0, rel=1e-12)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_arithmetic_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])


class TestSummarizeSlowdowns:
    def test_per_benchmark_ratio(self):
        base = {"a": SimulationResult("bbb", "a", 100, 50)}
        secure = {"a": SimulationResult("cm", "a", 150, 50)}
        result = summarize_slowdowns(secure, base)
        assert result == {"a": pytest.approx(1.5)}

    def test_missing_baseline_raises(self):
        secure = {"a": SimulationResult("cm", "a", 150, 50)}
        with pytest.raises(KeyError, match="no baseline"):
            summarize_slowdowns(secure, {})
