"""Tests for repro.security.counters — split counters and overflow."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.counters import (
    MINOR_COUNTERS_PER_PAGE,
    MINOR_LIMIT,
    CounterBlock,
    CounterStore,
)


class TestCounterBlock:
    def test_initial_nonce_is_zero(self):
        assert CounterBlock(0).nonce(5) == (0, 0)

    def test_increment_bumps_minor(self):
        block = CounterBlock(0)
        assert block.increment(3) is False
        assert block.nonce(3) == (0, 1)
        assert block.nonce(4) == (0, 0)  # other minors untouched

    def test_minor_overflow_bumps_major_and_resets(self):
        block = CounterBlock(0)
        for _ in range(MINOR_LIMIT):
            assert block.increment(0) is False
        assert block.increment(0) is True  # 128th write overflows (7 bits)
        assert block.major == 1
        assert block.minors == [0] * MINOR_COUNTERS_PER_PAGE

    def test_out_of_range_offset_rejected(self):
        with pytest.raises(IndexError):
            CounterBlock(0).increment(64)

    def test_encode_includes_major_and_all_minors(self):
        a = CounterBlock(0)
        b = CounterBlock(0)
        b.increment(63)  # last minor must affect the encoding
        assert a.encode() != b.encode()
        c = CounterBlock(0, major=1)
        assert a.encode() != c.encode()

    def test_copy_is_deep(self):
        a = CounterBlock(0)
        b = a.copy()
        b.increment(0)
        assert a.nonce(0) == (0, 0)


class TestCounterStore:
    def test_locate(self):
        assert CounterStore.locate(0) == (0, 0)
        assert CounterStore.locate(63) == (0, 63)
        assert CounterStore.locate(64) == (1, 0)
        assert CounterStore.locate(130) == (2, 2)

    def test_nonce_lazily_creates_page(self):
        store = CounterStore()
        page, major, minor = store.nonce(100)
        assert (page, major, minor) == (1, 0, 0)
        assert len(store) == 1

    def test_increment_tracks_overflows(self):
        store = CounterStore()
        for _ in range(MINOR_LIMIT + 1):
            store.increment(0)
        assert store.overflows == 1

    def test_snapshot_restore_roundtrip(self):
        store = CounterStore()
        store.increment(0)
        store.increment(65)
        snap = store.snapshot()
        store.increment(0)
        store.restore(snap)
        assert store.nonce(0) == (0, 0, 1)
        assert store.nonce(65) == (1, 0, 1)

    def test_snapshot_is_independent(self):
        store = CounterStore()
        store.increment(0)
        snap = store.snapshot()
        store.increment(0)
        assert snap[0].minors[0] == 1
        assert store.nonce(0)[2] == 2

    def test_rejects_nonstandard_layout(self):
        with pytest.raises(ValueError):
            CounterStore(blocks_per_page=32)

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_nonce_never_repeats_for_a_block(self, addrs):
        """Counter-mode safety: successive writes to any block always see a
        fresh (major, minor) pair."""
        store = CounterStore()
        seen = {}
        for addr in addrs:
            _, major, minor = store.nonce(addr)
            store.increment(addr)
            key = (addr, major, minor)
            # After an increment the pre-increment nonce is consumed; it
            # must not have been seen before for this block.
            assert key not in seen
            seen[key] = True
