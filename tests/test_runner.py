"""Tests for repro.analysis.runner — the parallel experiment runner.

The load-bearing property is *determinism*: a sweep fanned across N
worker processes must assemble to exactly the result the serial loop
produces, bit for bit, so every experiment artifact is comparable across
`--jobs` settings and across PRs.
"""

import pytest

from repro.analysis.experiments import DEFAULT_WARMUP, run_table4
from repro.analysis.runner import SimJob, SimSpec, execute_job, run_jobs
from repro.baselines.strict import StrictPersistencySimulator
from repro.core.schemes import get_scheme
from repro.core.simulator import SecurePersistencySimulator
from repro.sim.config import SystemConfig
from repro.workloads.store import get_trace


def _job(key, benchmark="povray", num_ops=1500, seed=1, warmup=0.3, **spec_kw):
    return SimJob(
        key=key,
        benchmark=benchmark,
        num_ops=num_ops,
        seed=seed,
        warmup_frac=warmup,
        spec=SimSpec(**spec_kw),
    )


class TestSimSpec:
    def test_unknown_simulator_rejected(self):
        with pytest.raises(ValueError, match="simulator"):
            SimSpec(simulator="magic")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            SimSpec(scheme="not-a-scheme")


class TestExecuteJob:
    def test_secure_job_matches_direct_simulation(self):
        job = _job(("k",), scheme="cm")
        via_runner = execute_job(job)
        direct = SecurePersistencySimulator(scheme=get_scheme("cm")).run(
            get_trace("povray", 1500, 1), 0.3
        )
        assert via_runner == direct

    def test_baseline_job_runs_bbb(self):
        result = execute_job(_job(("k",), scheme=None))
        assert result.scheme == "bbb"

    def test_strict_job_matches_direct_simulation(self):
        job = _job(("k",), simulator="strict")
        direct = StrictPersistencySimulator().run(get_trace("povray", 1500, 1), 0.3)
        assert execute_job(job) == direct

    def test_secpb_entries_override(self):
        small = execute_job(_job(("s",), scheme="cm", secpb_entries=4))
        large = execute_job(_job(("l",), scheme="cm", secpb_entries=256))
        assert small.cycles > large.cycles

    def test_bmf_cut_reduces_update_height_cost(self):
        full = execute_job(_job(("f",), scheme="cm"))
        cut = execute_job(_job(("c",), scheme="cm", bmf_cut=2))
        assert cut.cycles < full.cycles

    def test_explicit_config_respected(self):
        config = SystemConfig().with_secpb_entries(8)
        result = execute_job(_job(("k",), scheme="cm", config=config))
        assert result == execute_job(_job(("k2",), scheme="cm", secpb_entries=8))


class TestRunJobs:
    def test_results_keyed_and_ordered_by_submission(self):
        jobs = [_job(("b",), scheme="cm"), _job(("a",), scheme=None)]
        results = run_jobs(jobs, workers=1)
        assert list(results) == [("b",), ("a",)]

    def test_duplicate_keys_rejected(self):
        jobs = [_job(("same",), scheme="cm"), _job(("same",), scheme=None)]
        with pytest.raises(ValueError, match="duplicate job keys"):
            run_jobs(jobs, workers=1)

    def test_parallel_results_equal_serial(self):
        jobs = [
            _job((bench, label), benchmark=bench, scheme=scheme)
            for bench in ("gamess", "povray")
            for label, scheme in (("bbb", None), ("cm", "cm"), ("nogap", "nogap"))
        ]
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=3)
        assert serial == parallel
        assert list(serial) == list(parallel)


class TestExperimentDeterminism:
    """Acceptance: runner(jobs=4) output equals jobs=1 output exactly."""

    BENCHES = ["gamess", "povray", "hmmer"]

    def test_table4_parallel_identical_to_serial(self):
        serial = run_table4(num_ops=4000, benchmarks=self.BENCHES, jobs=1)
        parallel = run_table4(num_ops=4000, benchmarks=self.BENCHES, jobs=4)
        assert parallel.mean_overhead_pct == serial.mean_overhead_pct
        assert parallel.per_benchmark_pct == serial.per_benchmark_pct
        assert parallel.render() == serial.render()

    def test_warmup_default_matches_harness(self):
        assert DEFAULT_WARMUP == 0.3
