"""Tests for repro.sim.engine — clock, busy resource, bounded pipeline."""

import pytest

from repro.sim.engine import BoundedPipeline, BusyResource, CycleClock


class TestCycleClock:
    def test_advance(self):
        clock = CycleClock()
        assert clock.advance(10) == 10
        assert clock.advance(5) == 15

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            CycleClock().advance(-1)

    def test_advance_to_only_moves_forward(self):
        clock = CycleClock(now=100)
        clock.advance_to(50)
        assert clock.now == 100
        clock.advance_to(150)
        assert clock.now == 150


class TestBusyResource:
    def test_idle_resource_serves_immediately(self):
        res = BusyResource("r")
        wait, completion = res.request(now=10, service_cycles=5)
        assert wait == 0
        assert completion == 15

    def test_busy_resource_queues(self):
        res = BusyResource("r")
        res.request(0, 100)
        wait, completion = res.request(10, 5)
        assert wait == 90
        assert completion == 105

    def test_serialization_order_is_fifo(self):
        res = BusyResource("r")
        completions = [res.request(0, 10)[1] for _ in range(3)]
        assert completions == [10, 20, 30]

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            BusyResource("r").request(0, -1)

    def test_utilization(self):
        res = BusyResource("r")
        res.request(0, 50)
        assert res.utilization(100) == pytest.approx(0.5)
        assert res.utilization(0) == 0.0

    def test_utilization_caps_at_one(self):
        res = BusyResource("r")
        res.request(0, 200)
        assert res.utilization(100) == 1.0


class TestBoundedPipeline:
    def test_no_stall_below_depth(self):
        pipe = BoundedPipeline("sb", depth=2)
        assert pipe.push(now=0, completion=100) == 0
        assert pipe.push(now=1, completion=101) == 0

    def test_stall_when_full(self):
        pipe = BoundedPipeline("sb", depth=2)
        pipe.push(0, 100)
        pipe.push(0, 200)
        stall = pipe.push(0, 300)
        assert stall == 100  # waits for the oldest completion

    def test_completed_entries_retire(self):
        pipe = BoundedPipeline("sb", depth=1)
        pipe.push(0, 10)
        # at t=20 the previous op has retired: no stall
        assert pipe.push(20, 30) == 0

    def test_stall_releases_oldest_only(self):
        pipe = BoundedPipeline("sb", depth=2)
        pipe.push(0, 10)
        pipe.push(0, 50)
        stall = pipe.push(0, 60)
        assert stall == 10
        # after the implied wait to t=10, one slot freed; next push at
        # t=10 must wait for the op completing at 50.
        stall = pipe.push(10, 70)
        assert stall == 40

    def test_occupancy_tracks_outstanding(self):
        pipe = BoundedPipeline("sb", depth=4)
        pipe.push(0, 10)
        pipe.push(0, 20)
        assert pipe.occupancy == 2
