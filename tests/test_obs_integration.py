"""Integration tests: tracing/metrics wired through simulator, crash,
runner and campaign.

The two load-bearing guarantees:

* **Zero feedback** — a traced run returns results byte-identical to an
  untraced one; tracing observes the timeline, it never participates.
* **Fig. 4 visibility** — an M-scheme event stream shows the early/late
  metadata split per drained entry (early steps priced at accept, the
  MAC deferred to the drain).
"""

import json
import logging

import pytest

from repro.core.schemes import get_scheme
from repro.core.simulator import SecurePersistencySimulator, run_scheme
from repro.fault import CampaignSpec, run_campaign
from repro.obs import MetricsRegistry, Tracer, load_trace_schema, validate
from repro.workloads.spec import build_trace

NUM_OPS = 2000


def traced_run(scheme_name, tracer, num_ops=NUM_OPS):
    trace = build_trace("gamess", num_ops, 1)
    scheme = None if scheme_name == "bbb" else get_scheme(scheme_name)
    simulator = SecurePersistencySimulator(scheme=scheme, tracer=tracer)
    return simulator.run(trace, 0.0)


class TestTracedEqualsUntraced:
    @pytest.mark.parametrize("scheme_name", ["bbb", "m", "cobcm"])
    def test_identical_results(self, scheme_name):
        untraced = traced_run(scheme_name, None)
        traced = traced_run(scheme_name, Tracer())
        assert traced == untraced

    def test_warmup_path_identical(self):
        trace = build_trace("gamess", NUM_OPS, 1)
        scheme = get_scheme("cm")
        untraced = run_scheme(trace, scheme, warmup_frac=0.3)
        traced = run_scheme(trace, scheme, warmup_frac=0.3, tracer=Tracer())
        assert traced == untraced


class TestFig4Split:
    def test_m_scheme_early_late_split(self):
        tracer = Tracer()
        traced_run("m", tracer)
        accepts = [e for e in tracer.events if e["name"] == "secpb.accept"]
        drains = [e for e in tracer.events if e["name"] == "secpb.drain"]
        assert accepts and drains
        for event in accepts:
            assert event["args"]["early_steps"] == [
                "counter",
                "otp",
                "bmt_root",
                "ciphertext",
            ]
        for event in drains:
            assert event["args"]["late_steps"] == ["mac"]

    def test_cobcm_defers_everything(self):
        tracer = Tracer()
        traced_run("cobcm", tracer)
        drains = [e for e in tracer.events if e["name"] == "secpb.drain"]
        assert drains
        assert drains[0]["args"]["late_steps"] == [
            "counter",
            "otp",
            "bmt_root",
            "ciphertext",
            "mac",
        ]

    def test_bbb_has_no_metadata_steps(self):
        tracer = Tracer()
        traced_run("bbb", tracer)
        accepts = [e for e in tracer.events if e["name"] == "secpb.accept"]
        assert accepts
        assert all(e["args"]["early_steps"] == [] for e in accepts)

    def test_coalesce_reprices_value_dependent_steps_only(self):
        tracer = Tracer()
        traced_run("m", tracer)
        coalesces = [e for e in tracer.events if e["name"] == "secpb.coalesce"]
        assert coalesces
        # M's eager value-dependent work is the ciphertext; the MAC is late.
        assert all(
            e["args"]["early_steps"] == ["ciphertext"] for e in coalesces
        )


class TestChromeRoundTrip:
    def test_export_loads_and_validates(self, tmp_path):
        tracer = Tracer()
        traced_run("m", tracer, num_ops=800)
        out = tmp_path / "trace.json"
        tracer.save_chrome(out)
        with open(out, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert validate(payload, load_trace_schema()) == []
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert phases >= {"M", "X", "C"}

    def test_timestamps_are_simulated_cycles(self):
        tracer = Tracer()
        result = traced_run("m", tracer, num_ops=800)
        slices = [e for e in tracer.events if e["ph"] == "X"]
        assert all(0 <= e["ts"] <= result.cycles * 1.1 for e in slices)
        assert all(e["dur"] >= 0 for e in slices)


class TestCrashRecoveryEvents:
    def _system(self, tracer=None, budget=None):
        from repro.core.crash import SecurePersistentSystem

        system = SecurePersistentSystem(get_scheme("cobcm"), tracer=tracer)
        for i in range(10):
            system.store(i, bytes([i]) * 64)
        report = system.crash(energy_budget_nj=budget)
        recovery = system.recover()
        return report, recovery

    def test_traced_crash_identical_to_untraced(self):
        untraced_report, untraced_recovery = self._system()
        traced_report, traced_recovery = self._system(tracer=Tracer())
        assert traced_report == untraced_report
        assert traced_recovery.verdict == untraced_recovery.verdict

    def test_full_drain_event_sequence(self):
        tracer = Tracer()
        report, _ = self._system(tracer=tracer)
        names = [e["name"] for e in tracer.events]
        assert names[0] == "crash.begin"
        assert names.count("crash.drain") == report.entries_drained == 10
        assert "crash.brownout" not in names
        for expected in ("crash.end", "recovery.begin", "recovery.end"):
            assert expected in names

    def test_brownout_emits_lost_block_count(self):
        tracer = Tracer()
        report, _ = self._system(tracer=tracer, budget=50.0)
        brownouts = [e for e in tracer.events if e["name"] == "crash.brownout"]
        (event,) = brownouts
        assert event["args"]["lost_blocks"] == len(report.unpersisted_blocks)
        ends = [e for e in tracer.events if e["name"] == "crash.end"]
        assert ends[0]["args"]["verdict"] == "partial"

    def test_crash_events_validate_against_schema(self):
        tracer = Tracer()
        self._system(tracer=tracer, budget=50.0)
        assert validate(tracer.to_chrome(), load_trace_schema()) == []


class TestCampaignMetrics:
    SPEC = dict(schemes=("m",), crash_points=2, num_stores=30)

    def _run(self, jobs):
        registry = MetricsRegistry()
        report = run_campaign(
            CampaignSpec(**self.SPEC),
            jobs=jobs,
            minimize=False,
            metrics=registry,
        )
        return report, registry

    def test_verdict_counters_match_report(self):
        report, registry = self._run(jobs=1)
        passed = len(report.results) - len(report.failures)
        assert registry.get("campaign.cases_passed").value == float(passed)
        assert registry.get("campaign.cases_total").value == float(
            report.total
        )
        assert registry.get("campaign.pass_rate").value == pytest.approx(
            passed / report.total
        )

    def test_snapshot_deterministic_across_worker_counts(self):
        _, serial = self._run(jobs=1)
        _, parallel = self._run(jobs=4)
        assert serial.snapshot() == parallel.snapshot()
        # The wall-clock histogram exists but is excluded from snapshots.
        assert not serial.get("runner.task_seconds").deterministic

    def test_heartbeat_logged_at_info(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.fault.campaign"):
            self._run(jobs=1)
        assert "campaign progress" in caplog.text

    def test_runner_counters_accumulate(self):
        report, registry = self._run(jobs=1)
        assert registry.get("runner.tasks_completed").value == float(
            report.total
        )
        assert registry.get("runner.tasks_total").value == float(report.total)

    def test_tracer_gets_one_job_event_per_case(self):
        tracer = Tracer(clock_unit="seconds")
        report = run_campaign(
            CampaignSpec(**self.SPEC),
            jobs=1,
            minimize=False,
            tracer=tracer,
        )
        jobs = [e for e in tracer.events if e["name"] == "runner.job"]
        assert len(jobs) == report.total


class TestExperimentMetrics:
    def test_runner_metrics_through_runner_opts(self):
        from repro.analysis.experiments import run_table4

        registry = MetricsRegistry()
        result = run_table4(
            num_ops=1500,
            benchmarks=["gamess", "povray"],
            runner_opts={"metrics": registry},
        )
        assert result.mean_overhead_pct
        # 2 benchmarks x (1 baseline + 6 schemes) = 14 jobs.
        assert registry.get("runner.tasks_completed").value == 14.0
        assert registry.get("runner.tasks_failed") is None

    def test_metrics_identical_across_jobs(self):
        from repro.analysis.experiments import run_table4

        snapshots = []
        for jobs in (1, 2):
            registry = MetricsRegistry()
            run_table4(
                num_ops=1500,
                benchmarks=["gamess", "povray"],
                jobs=jobs,
                runner_opts={"metrics": registry},
            )
            snapshots.append(registry.snapshot())
        assert snapshots[0] == snapshots[1]
