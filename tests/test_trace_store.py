"""Tests for repro.workloads.store — the memoizing trace store."""

import numpy as np
import pytest

from repro.workloads.spec import build_trace
from repro.workloads.store import DEFAULT_STORE, TraceStore, get_trace


class TestTraceStore:
    def test_cache_hit_returns_identical_trace(self):
        store = TraceStore()
        first = store.get("gamess", 1000, seed=1)
        second = store.get("gamess", 1000, seed=1)
        assert second is first
        assert store.hits == 1
        assert store.misses == 1

    def test_cached_trace_matches_direct_build(self):
        store = TraceStore()
        cached = store.get("povray", 800, seed=3)
        direct = build_trace("povray", 800, 3)
        assert np.array_equal(cached.is_store, direct.is_store)
        assert np.array_equal(cached.block_addr, direct.block_addr)
        assert np.array_equal(cached.gap, direct.gap)

    def test_different_seed_misses(self):
        store = TraceStore()
        a = store.get("gamess", 1000, seed=1)
        b = store.get("gamess", 1000, seed=2)
        assert a is not b
        assert store.misses == 2
        assert store.hits == 0

    def test_different_num_ops_misses(self):
        store = TraceStore()
        a = store.get("gamess", 1000, seed=1)
        b = store.get("gamess", 2000, seed=1)
        assert a is not b
        assert len(a) == 1000
        assert len(b) == 2000
        assert store.misses == 2

    def test_different_benchmark_misses(self):
        store = TraceStore()
        store.get("gamess", 500)
        store.get("povray", 500)
        assert store.misses == 2
        assert len(store) == 2

    def test_unknown_benchmark_raises_and_caches_nothing(self):
        store = TraceStore()
        with pytest.raises(KeyError, match="unknown benchmark"):
            store.get("not-a-benchmark", 100)
        assert len(store) == 0

    def test_lru_eviction_respects_bound(self):
        store = TraceStore(max_traces=2)
        first = store.get("gamess", 500)
        store.get("povray", 500)
        store.get("hmmer", 500)  # evicts gamess (least recently used)
        assert len(store) == 2
        refetched = store.get("gamess", 500)
        assert refetched is not first
        assert store.misses == 4

    def test_lru_touch_on_hit_protects_entry(self):
        store = TraceStore(max_traces=2)
        first = store.get("gamess", 500)
        store.get("povray", 500)
        assert store.get("gamess", 500) is first  # moves gamess to MRU
        store.get("hmmer", 500)  # evicts povray, not gamess
        assert store.get("gamess", 500) is first

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_traces"):
            TraceStore(max_traces=0)

    def test_clear_resets_contents_and_counters(self):
        store = TraceStore()
        store.get("gamess", 500)
        store.get("gamess", 500)
        store.clear()
        assert len(store) == 0
        assert store.hits == 0
        assert store.misses == 0


class TestDefaultStore:
    def test_get_trace_uses_default_store(self):
        baseline = len(DEFAULT_STORE)
        a = get_trace("leslie3d", 700, seed=9)
        b = get_trace("leslie3d", 700, seed=9)
        assert a is b
        assert DEFAULT_STORE.get("leslie3d", 700, 9) is a
        assert len(DEFAULT_STORE) == baseline + 1


class TestTraceIntegrity:
    """ISSUE 5 satellite: checksummed memoization + verified disk cache."""

    def test_checksum_recorded_on_build(self):
        from repro.workloads.store import trace_digest

        store = TraceStore()
        trace = store.get("gamess", 500)
        assert store.checksum("gamess", 500) == trace_digest(trace)

    def test_verify_detects_in_place_mutation(self):
        store = TraceStore()
        trace = store.get("gamess", 500)
        assert store.verify("gamess", 500)
        trace.block_addr[0] += 1
        assert not store.verify("gamess", 500)
        trace.block_addr[0] -= 1
        assert store.verify("gamess", 500)

    def test_verify_false_for_absent_trace(self):
        assert not TraceStore().verify("gamess", 500)

    def test_checksum_evicted_with_trace(self):
        store = TraceStore(max_traces=1)
        store.get("gamess", 500)
        store.get("povray", 500)  # evicts gamess
        assert store.checksum("gamess", 500) is None
        assert store.checksum("povray", 500) is not None

    def test_digest_depends_on_columns_and_name(self):
        from repro.workloads.store import trace_digest

        a = build_trace("gamess", 500, 1)
        b = build_trace("gamess", 500, 2)
        assert trace_digest(a) != trace_digest(b)
        assert trace_digest(a) == trace_digest(build_trace("gamess", 500, 1))


class TestDiskCache:
    def test_miss_populates_manifested_npz(self, tmp_path):
        store = TraceStore(cache_dir=tmp_path)
        store.get("gamess", 500)
        cached = tmp_path / "gamess-n500-s1.npz"
        assert cached.is_file()
        assert (tmp_path / "gamess-n500-s1.npz.sha256").is_file()

    def test_second_store_loads_from_disk(self, tmp_path):
        TraceStore(cache_dir=tmp_path).get("gamess", 500)
        fresh = TraceStore(cache_dir=tmp_path)
        trace = fresh.get("gamess", 500)
        direct = build_trace("gamess", 500, 1)
        assert np.array_equal(trace.is_store, direct.is_store)
        assert np.array_equal(trace.block_addr, direct.block_addr)
        assert np.array_equal(trace.gap, direct.gap)
        assert fresh.regenerated == 0

    def test_truncated_cache_entry_quarantined_and_regenerated(
        self, tmp_path, caplog
    ):
        import logging

        TraceStore(cache_dir=tmp_path).get("gamess", 500)
        cached = tmp_path / "gamess-n500-s1.npz"
        with open(cached, "r+b") as handle:
            handle.truncate(10)
        fresh = TraceStore(cache_dir=tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.workloads.store"):
            trace = fresh.get("gamess", 500)
        # Never deserialized: quarantined, warned, rebuilt from spec.
        assert fresh.regenerated == 1
        assert any("failed verification" in r.message for r in caplog.records)
        assert (tmp_path / "gamess-n500-s1.npz.quarantined").is_file()
        direct = build_trace("gamess", 500, 1)
        assert np.array_equal(trace.block_addr, direct.block_addr)

    def test_bit_flipped_cache_entry_regenerated(self, tmp_path):
        TraceStore(cache_dir=tmp_path).get("povray", 400)
        cached = tmp_path / "povray-n400-s1.npz"
        raw = bytearray(cached.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        cached.write_bytes(bytes(raw))
        fresh = TraceStore(cache_dir=tmp_path)
        trace = fresh.get("povray", 400)
        assert fresh.regenerated == 1
        direct = build_trace("povray", 400, 1)
        assert np.array_equal(trace.block_addr, direct.block_addr)

    def test_manifestless_leftover_not_trusted(self, tmp_path):
        TraceStore(cache_dir=tmp_path).get("gamess", 500)
        (tmp_path / "gamess-n500-s1.npz.sha256").unlink()
        fresh = TraceStore(cache_dir=tmp_path)
        fresh.get("gamess", 500)
        assert fresh.regenerated == 1

    def test_env_var_enables_cache(self, tmp_path, monkeypatch):
        from repro.workloads.store import CACHE_DIR_ENV

        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        store = TraceStore()
        assert store.cache_dir == tmp_path
        store.get("gamess", 300)
        assert (tmp_path / "gamess-n300-s1.npz").is_file()

    def test_no_cache_dir_means_no_disk_io(self, monkeypatch):
        from repro.workloads.store import CACHE_DIR_ENV

        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert TraceStore().cache_dir is None


class TestShmAttachIntegration:
    """The store's zero-copy attach path (repro.runtime.shm)."""

    KEY = ("hmmer", 288, 53)

    @pytest.fixture(autouse=True)
    def _plane(self, monkeypatch):
        from repro.runtime.shm import reset_attachments

        monkeypatch.setenv("SECPB_TRACE_SHM", "1")
        reset_attachments()
        yield
        reset_attachments()

    def _announce_one(self):
        from repro.runtime.shm import SharedTraceRegistry, announce
        from repro.workloads.store import trace_digest

        registry = SharedTraceRegistry()
        trace = build_trace(*self.KEY)
        info = registry.publish(self.KEY, trace, trace_digest(trace))
        announce([info])
        return registry, trace

    def test_attach_counters_start_at_zero(self):
        store = TraceStore()
        assert store.built == 0
        assert store.attach_hits == 0

    def test_miss_adopts_announced_segment(self):
        registry, original = self._announce_one()
        try:
            store = TraceStore()
            trace = store.get(*self.KEY)
            assert store.attach_hits == 1
            assert store.built == 0
            assert np.array_equal(trace.block_addr, original.block_addr)
            # Adopted traces carry the published digest: verify() holds.
            assert store.verify(*self.KEY)
            # And the next lookup is a plain memo hit.
            assert store.get(*self.KEY) is trace
            assert store.attach_hits == 1
        finally:
            registry.cleanup()

    def test_shm_attach_false_ignores_announcements(self):
        registry, _ = self._announce_one()
        try:
            store = TraceStore(shm_attach=False)
            store.get(*self.KEY)
            assert store.built == 1
            assert store.attach_hits == 0
        finally:
            registry.cleanup()

    def test_store_counters_reports_default_store(self):
        from repro.workloads.store import store_counters

        built, attached = store_counters()
        assert built == DEFAULT_STORE.built
        assert attached == DEFAULT_STORE.attach_hits

    def test_clear_resets_attach_counters(self):
        registry, _ = self._announce_one()
        try:
            store = TraceStore()
            store.get(*self.KEY)
            assert store.attach_hits == 1
            store.clear()
            assert store.attach_hits == 0
            assert store.built == 0
        finally:
            registry.cleanup()
