"""Tests for repro.workloads.store — the memoizing trace store."""

import numpy as np
import pytest

from repro.workloads.spec import build_trace
from repro.workloads.store import DEFAULT_STORE, TraceStore, get_trace


class TestTraceStore:
    def test_cache_hit_returns_identical_trace(self):
        store = TraceStore()
        first = store.get("gamess", 1000, seed=1)
        second = store.get("gamess", 1000, seed=1)
        assert second is first
        assert store.hits == 1
        assert store.misses == 1

    def test_cached_trace_matches_direct_build(self):
        store = TraceStore()
        cached = store.get("povray", 800, seed=3)
        direct = build_trace("povray", 800, 3)
        assert np.array_equal(cached.is_store, direct.is_store)
        assert np.array_equal(cached.block_addr, direct.block_addr)
        assert np.array_equal(cached.gap, direct.gap)

    def test_different_seed_misses(self):
        store = TraceStore()
        a = store.get("gamess", 1000, seed=1)
        b = store.get("gamess", 1000, seed=2)
        assert a is not b
        assert store.misses == 2
        assert store.hits == 0

    def test_different_num_ops_misses(self):
        store = TraceStore()
        a = store.get("gamess", 1000, seed=1)
        b = store.get("gamess", 2000, seed=1)
        assert a is not b
        assert len(a) == 1000
        assert len(b) == 2000
        assert store.misses == 2

    def test_different_benchmark_misses(self):
        store = TraceStore()
        store.get("gamess", 500)
        store.get("povray", 500)
        assert store.misses == 2
        assert len(store) == 2

    def test_unknown_benchmark_raises_and_caches_nothing(self):
        store = TraceStore()
        with pytest.raises(KeyError, match="unknown benchmark"):
            store.get("not-a-benchmark", 100)
        assert len(store) == 0

    def test_lru_eviction_respects_bound(self):
        store = TraceStore(max_traces=2)
        first = store.get("gamess", 500)
        store.get("povray", 500)
        store.get("hmmer", 500)  # evicts gamess (least recently used)
        assert len(store) == 2
        refetched = store.get("gamess", 500)
        assert refetched is not first
        assert store.misses == 4

    def test_lru_touch_on_hit_protects_entry(self):
        store = TraceStore(max_traces=2)
        first = store.get("gamess", 500)
        store.get("povray", 500)
        assert store.get("gamess", 500) is first  # moves gamess to MRU
        store.get("hmmer", 500)  # evicts povray, not gamess
        assert store.get("gamess", 500) is first

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_traces"):
            TraceStore(max_traces=0)

    def test_clear_resets_contents_and_counters(self):
        store = TraceStore()
        store.get("gamess", 500)
        store.get("gamess", 500)
        store.clear()
        assert len(store) == 0
        assert store.hits == 0
        assert store.misses == 0


class TestDefaultStore:
    def test_get_trace_uses_default_store(self):
        baseline = len(DEFAULT_STORE)
        a = get_trace("leslie3d", 700, seed=9)
        b = get_trace("leslie3d", 700, seed=9)
        assert a is b
        assert DEFAULT_STORE.get("leslie3d", 700, 9) is a
        assert len(DEFAULT_STORE) == baseline + 1
