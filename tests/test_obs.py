"""Unit tests for repro.obs — metrics, tracing, schema, logging bootstrap."""

import io
import json
import logging

import pytest

from repro.obs import (
    LANE_CRASH,
    LANE_DRAIN,
    LANE_STORES,
    MetricsRegistry,
    SchemaError,
    Tracer,
    configure_logging,
    load_trace_schema,
    record_simulation,
    sanitize_metric_name,
    validate,
    validate_or_raise,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("runner.tasks_completed")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="negative"):
            counter.inc(-1)


class TestGauge:
    def test_set_moves_both_directions(self):
        gauge = MetricsRegistry().gauge("campaign.pass_rate")
        gauge.set(0.75)
        assert gauge.value == 0.75
        gauge.set(0.25)
        assert gauge.value == 0.25


class TestHistogram:
    def test_cumulative_bucket_semantics(self):
        hist = MetricsRegistry().histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        # le-semantics: each bucket counts every observation <= its bound.
        assert hist.counts == [1, 2, 3]
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.55)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            MetricsRegistry().histogram("h", buckets=())

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x", "help text")
        second = registry.counter("x")
        assert first is second
        assert len(registry) == 1

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("x")

    def test_snapshot_excludes_nondeterministic_by_default(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("wall", deterministic=False).observe(0.5)
        assert set(registry.snapshot()) == {"a"}
        assert set(registry.snapshot(include_nondeterministic=True)) == {
            "a",
            "wall",
        }

    def test_to_json_round_trips_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.second").inc(2)
        registry.counter("a.first").inc(1)
        payload = json.loads(registry.to_json())
        assert list(payload) == ["a.first", "b.second"]
        assert payload["a.first"]["kind"] == "counter"
        assert payload["a.first"]["value"] == 1.0

    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        registry.counter("runner.tasks_completed", "Tasks done").inc(7)
        registry.gauge("campaign.pass_rate").set(0.5)
        registry.histogram("runner.task_seconds", buckets=(1.0,)).observe(0.5)
        text = registry.to_prometheus_text()
        assert "# HELP runner_tasks_completed Tasks done" in text
        assert "# TYPE runner_tasks_completed counter" in text
        assert "runner_tasks_completed 7" in text
        assert "campaign_pass_rate 0.5" in text
        assert 'runner_task_seconds_bucket{le="1"} 1' in text
        assert 'runner_task_seconds_bucket{le="+Inf"} 1' in text
        assert "runner_task_seconds_sum 0.5" in text
        assert "runner_task_seconds_count 1" in text
        assert text.endswith("\n")

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("runner.task-seconds") == "runner_task_seconds"
        assert sanitize_metric_name("9lives") == "_9lives"


class TestRecordSimulation:
    def _result(self):
        from repro.core.schemes import get_scheme
        from repro.core.simulator import run_scheme
        from repro.workloads.spec import build_trace

        trace = build_trace("gamess", 1500, 1)
        return run_scheme(trace, get_scheme("m"))

    def test_counts_cycles_and_scheme(self):
        registry = MetricsRegistry()
        result = self._result()
        record_simulation(registry, result)
        assert registry.get("sim.runs").value == 1.0
        assert registry.get("sim.cycles").value == result.cycles
        assert registry.get("sim.runs_by_scheme.m").value == 1.0

    def test_ratio_stats_become_gauges(self):
        registry = MetricsRegistry()
        record_simulation(registry, self._result())
        assert registry.get("sim.stats.ppti").kind == "gauge"
        assert registry.get("sim.stats.nwpe").kind == "gauge"


class TestTracer:
    def test_bound_complete_event(self):
        tracer = Tracer()
        emit = tracer.bind_complete("secpb.accept", "secpb", LANE_STORES)
        emit(100.0, 5.0, {"addr": 7})
        (event,) = tracer.events
        assert event == {
            "ph": "X",
            "name": "secpb.accept",
            "cat": "secpb",
            "ts": 100.0,
            "dur": 5.0,
            "pid": 1,
            "tid": LANE_STORES,
            "args": {"addr": 7},
        }

    def test_instant_and_counter_events(self):
        tracer = Tracer()
        tracer.bind_instant("crash.begin", "crash", LANE_CRASH)(3.0)
        tracer.bind_counter("secpb.occupancy", LANE_DRAIN)(4.0, {"effective": 2})
        instant, counter = tracer.events
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert counter["ph"] == "C" and counter["args"] == {"effective": 2}

    def test_chrome_export_has_metadata_lanes(self):
        tracer = Tracer(process_name="unit-test", clock_unit="cycles")
        tracer.complete("e", "c", LANE_STORES, 0.0, 1.0)
        payload = tracer.to_chrome()
        names = [e["name"] for e in payload["traceEvents"] if e["ph"] == "M"]
        assert "process_name" in names
        assert names.count("thread_name") >= 4
        assert payload["metadata"]["clock_unit"] == "cycles"

    def test_jsonl_is_one_object_per_line(self):
        tracer = Tracer()
        tracer.complete("a", "c", 1, 0.0, 1.0)
        tracer.instant("b", "c", 2, 2.0)
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_save_chrome_writes_manifest(self, tmp_path):
        tracer = Tracer()
        tracer.complete("a", "c", 1, 0.0, 1.0)
        out = tmp_path / "trace.json"
        tracer.save_chrome(out)
        assert json.loads(out.read_text())["traceEvents"]
        assert (tmp_path / "trace.json.sha256").exists()


class TestTraceSchema:
    def test_valid_trace_passes(self):
        tracer = Tracer()
        tracer.complete("a", "c", 1, 0.0, 1.0, {"addr": 1})
        assert validate(tracer.to_chrome(), load_trace_schema()) == []

    def test_missing_required_key_fails(self):
        schema = load_trace_schema()
        errors = validate({"traceEvents": [{"ph": "X", "name": "a"}]}, schema)
        assert any("pid" in e for e in errors)

    def test_bad_phase_fails(self):
        schema = load_trace_schema()
        bad = {
            "traceEvents": [
                {"ph": "Z", "name": "a", "pid": 1, "tid": 1}
            ]
        }
        assert any("enum" in e for e in validate(bad, schema))

    def test_unknown_event_key_fails(self):
        schema = load_trace_schema()
        bad = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": 1, "tid": 1, "bogus": 1}
            ]
        }
        assert any("bogus" in e for e in validate(bad, schema))

    def test_validate_or_raise_collects_errors(self):
        with pytest.raises(SchemaError) as excinfo:
            validate_or_raise({}, load_trace_schema())
        assert excinfo.value.errors

    def test_integer_excludes_bool(self):
        assert validate(True, {"type": "integer"})
        assert validate(3.0, {"type": "integer"}) == []


class TestConfigureLogging:
    def _drop_tagged_handler(self):
        root = logging.getLogger()
        for handler in list(root.handlers):
            if getattr(handler, "_secpb_obs_handler", False):
                root.removeHandler(handler)

    def test_idempotent_no_duplicate_handlers(self):
        try:
            configure_logging()
            configure_logging(verbose=True)
            root = logging.getLogger()
            tagged = [
                h
                for h in root.handlers
                if getattr(h, "_secpb_obs_handler", False)
            ]
            assert len(tagged) == 1
        finally:
            self._drop_tagged_handler()

    def test_levels(self):
        try:
            assert configure_logging() == logging.WARNING
            assert configure_logging(verbose=True) == logging.INFO
            assert configure_logging(quiet=True) == logging.ERROR
        finally:
            self._drop_tagged_handler()

    def test_verbose_and_quiet_rejected(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            configure_logging(verbose=True, quiet=True)

    def test_warning_visible_by_default_info_hidden(self):
        stream = io.StringIO()
        try:
            configure_logging(stream=stream)
            logger = logging.getLogger("repro.workloads.store")
            logger.warning("quarantine warning")
            logger.info("progress chat")
            text = stream.getvalue()
            assert "quarantine warning" in text
            assert "progress chat" not in text
        finally:
            self._drop_tagged_handler()

    def test_quiet_suppresses_warnings(self):
        stream = io.StringIO()
        try:
            configure_logging(quiet=True, stream=stream)
            logging.getLogger("repro.test").warning("should vanish")
            assert stream.getvalue() == ""
        finally:
            self._drop_tagged_handler()
