"""Golden-output specification shared by the equivalence test and tooling.

The hot-path optimization work (ISSUE 3) carries a hard guarantee: the
simulator may get faster, but every serialized artifact must stay
**byte-identical**.  This module pins down exactly what "the artifact"
means: canonical JSON renderings of

* a small Table IV sweep (all six schemes + the BBB baseline),
* a small Fig. 8 sweep (BMT root updates per scheme), and
* one full :class:`~repro.sim.stats.SimulationResult` per scheme + BBB,
  including the complete raw counter dictionary.

``tests/data/golden_*.json`` are the checked-in references, produced by
``tools/regen_golden.py`` *before* an optimization lands.  The test in
:mod:`tests.test_golden_output` re-runs the same sweeps (serial and with
a 4-worker pool) and compares bytes.  Regenerating the goldens is only
legitimate when a PR intentionally changes simulator semantics — never
as part of a performance change.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.analysis.experiments import run_fig8, run_table4
from repro.analysis.serialize import result_to_dict
from repro.core.schemes import SPECTRUM_ORDER, get_scheme
from repro.core.simulator import run_scheme

GOLDEN_DIR = Path(__file__).parent / "data"

NUM_OPS = 2500
SEED = 7
WARMUP = 0.3
BENCHMARKS = ["gamess", "povray", "hmmer"]
RUNS_BENCHMARK = "hmmer"


def canonical_json(result) -> str:
    """Canonical byte representation of one experiment result."""
    return json.dumps(result_to_dict(result), indent=2, sort_keys=True) + "\n"


def build_table4(jobs: int = 1) -> str:
    return canonical_json(
        run_table4(num_ops=NUM_OPS, seed=SEED, benchmarks=BENCHMARKS, jobs=jobs)
    )


def build_fig8(jobs: int = 1) -> str:
    return canonical_json(
        run_fig8(num_ops=NUM_OPS, seed=SEED, benchmarks=BENCHMARKS, jobs=jobs)
    )


def build_runs() -> str:
    """One full SimulationResult (cycles + every raw counter) per scheme."""
    from repro.workloads.spec import build_trace

    trace = build_trace(RUNS_BENCHMARK, NUM_OPS, SEED)
    runs: Dict[str, dict] = {}
    for name in [None] + SPECTRUM_ORDER:
        scheme = get_scheme(name) if name is not None else None
        result = run_scheme(trace, scheme, warmup_frac=WARMUP)
        runs[result.scheme] = result_to_dict(result)
    return json.dumps(runs, indent=2, sort_keys=True) + "\n"


GOLDEN_BUILDERS = {
    "golden_table4.json": build_table4,
    "golden_fig8.json": build_fig8,
    "golden_runs.json": build_runs,
}


def regenerate() -> None:
    """(Re)write every golden file — see the module docstring for when."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    for filename, builder in GOLDEN_BUILDERS.items():
        (GOLDEN_DIR / filename).write_text(builder())
