"""Tests for repro.security.prf — the keyed PRF / hash substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.prf import hash_children, keyed_hash, prf, xor_bytes

KEY = b"test-key-0123456789abcdef-------"


class TestPRF:
    def test_deterministic(self):
        assert prf(KEY, b"a", 1) == prf(KEY, b"a", 1)

    def test_output_length_default(self):
        assert len(prf(KEY, b"x")) == 64

    def test_output_length_custom(self):
        assert len(prf(KEY, b"x", out_bytes=100)) == 100

    def test_key_sensitivity(self):
        assert prf(KEY, b"x") != prf(b"another-key-0123456789abcdef----", b"x")

    def test_input_sensitivity(self):
        assert prf(KEY, b"x") != prf(KEY, b"y")
        assert prf(KEY, 1, 2) != prf(KEY, 2, 1)

    def test_length_prefixing_prevents_ambiguity(self):
        assert prf(KEY, b"ab", b"c") != prf(KEY, b"a", b"bc")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            prf(b"", b"x")

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            prf(KEY, -1)

    @given(st.integers(min_value=0, max_value=2**64), st.integers(min_value=0, max_value=2**64))
    @settings(max_examples=50)
    def test_distinct_nonces_give_distinct_pads(self, a, b):
        if a != b:
            assert prf(KEY, a) != prf(KEY, b)

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=20)
    def test_prefix_property_of_expansion(self, n):
        """Shorter outputs are prefixes of longer ones (counter-mode)."""
        long = prf(KEY, b"seed", out_bytes=300)
        assert prf(KEY, b"seed", out_bytes=n) == long[:n]


class TestKeyedHash:
    def test_deterministic_and_sized(self):
        digest = keyed_hash(KEY, b"data")
        assert digest == keyed_hash(KEY, b"data")
        assert len(digest) == 32

    def test_input_sensitivity(self):
        assert keyed_hash(KEY, b"a") != keyed_hash(KEY, b"b")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            keyed_hash(b"", b"x")


class TestHashChildren:
    def test_position_binding(self):
        children = [b"c" * 32] * 8
        assert hash_children(KEY, 1, 0, children) != hash_children(KEY, 1, 1, children)
        assert hash_children(KEY, 1, 0, children) != hash_children(KEY, 2, 0, children)

    def test_child_sensitivity(self):
        a = [b"a" * 32] * 8
        b = [b"a" * 32] * 7 + [b"b" * 32]
        assert hash_children(KEY, 1, 0, a) != hash_children(KEY, 1, 0, b)


class TestXorBytes:
    def test_roundtrip(self):
        a, b = b"\x01\x02\x03", b"\xff\x00\x0f"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    @given(st.binary(min_size=64, max_size=64), st.binary(min_size=64, max_size=64))
    @settings(max_examples=50)
    def test_xor_involution(self, a, b):
        assert xor_bytes(xor_bytes(a, b), b) == a
        assert xor_bytes(a, a) == bytes(64)
