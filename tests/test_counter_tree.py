"""Tests for repro.security.counter_tree — the SGX-style counter tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.bmt import BonsaiMerkleTree
from repro.security.counter_tree import SgxCounterTree

KEY = b"counter-tree-key-0123456789abcdef"


def tree(height=3, arity=4, counter_bits=56):
    return SgxCounterTree(KEY, height=height, arity=arity, counter_bits=counter_bits)


class TestConstruction:
    def test_capacity(self):
        assert tree(height=3, arity=4).capacity == 64

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SgxCounterTree(KEY, height=0)
        with pytest.raises(ValueError):
            SgxCounterTree(KEY, arity=1)

    def test_out_of_range_leaf(self):
        with pytest.raises(IndexError):
            tree().update_leaf(10**9, b"x")
        with pytest.raises(IndexError):
            tree().verify_leaf(10**9, b"x")


class TestUpdateVerify:
    def test_update_then_verify(self):
        t = tree()
        t.update_leaf(5, b"payload")
        assert t.verify_leaf(5, b"payload")

    def test_wrong_payload_fails(self):
        t = tree()
        t.update_leaf(5, b"payload")
        assert not t.verify_leaf(5, b"other")

    def test_stale_payload_fails_after_update(self):
        t = tree()
        t.update_leaf(5, b"v1")
        t.update_leaf(5, b"v2")
        assert not t.verify_leaf(5, b"v1")
        assert t.verify_leaf(5, b"v2")

    def test_unwritten_leaf_fails(self):
        assert not tree().verify_leaf(3, b"anything")

    def test_update_recomputes_one_mac_per_level(self):
        t = tree(height=3)
        assert t.update_leaf(0, b"x") == 4  # leaf + 3 node MACs

    def test_root_counter_increments_per_update(self):
        t = tree()
        t.update_leaf(0, b"a")
        t.update_leaf(1, b"b")
        assert t.root_counter == 2

    def test_sibling_updates_do_not_invalidate(self):
        t = tree()
        t.update_leaf(0, b"a")
        t.update_leaf(1, b"b")
        assert t.verify_leaf(0, b"a")
        assert t.verify_leaf(1, b"b")


class TestReplayDetection:
    def test_node_rollback_detected(self):
        """Replaying an old interior node fails its parent-keyed MAC."""
        t = tree()
        t.update_leaf(0, b"v1")
        old_node = t.snapshot_node(1, 0)
        t.update_leaf(0, b"v2")
        t.rollback_node(1, 0, old_node)
        assert not t.verify_leaf(0, b"v2")
        assert not t.verify_leaf(0, b"v1")


class TestCounterOverflow:
    def test_narrow_counters_force_reepoch(self):
        t = tree(counter_bits=2)  # limit 3
        for i in range(5):
            t.update_leaf(0, bytes([i]))
        assert t.reepochs > 0
        assert t.verify_leaf(0, bytes([4]))


class TestVsBmt:
    def test_verification_fetch_advantage(self):
        """The counter tree verifies with one node per level; the BMT needs
        all siblings per level."""
        ctr = tree(height=8, arity=8)
        bmt = BonsaiMerkleTree(KEY, height=8, arity=8)
        assert ctr.verify_fetches() == 9
        bmt_fetches = bmt.height * bmt.arity  # children read per level
        assert ctr.verify_fetches() < bmt_fetches

    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.binary(min_size=1, max_size=32)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_agreement_with_bmt_semantics(self, updates):
        """Property: both trees accept the latest payloads and reject
        stale ones, over any update sequence."""
        ctr = tree(height=3, arity=4)
        bmt = BonsaiMerkleTree(KEY, height=3, arity=4)
        latest = {}
        for leaf, payload in updates:
            ctr.update_leaf(leaf, payload)
            bmt.update_leaf(leaf, payload)
            latest[leaf] = payload
        for leaf, payload in latest.items():
            assert ctr.verify_leaf(leaf, payload)
            assert bmt.verify_leaf(leaf, payload)
            assert ctr.verify_leaf(leaf, payload + b"!") is False
            assert bmt.verify_leaf(leaf, payload + b"!") is False


class TestAsIntegrityEngine:
    def test_secure_memory_works_with_counter_tree(self):
        """The counter tree drops into the crypto engine in place of the
        BMT: persistence and recovery still verify end to end."""
        from repro.security.engine import CryptoEngine, SecureMemory

        engine = CryptoEngine(tree=SgxCounterTree(KEY, height=4, arity=8))
        memory = SecureMemory(engine=engine, atomic=True)
        for i in range(20):
            memory.persist_block(i, bytes([i]) * 64)
        for i in range(20):
            recovered = memory.recover_block(i)
            assert recovered.ok
            assert recovered.plaintext == bytes([i]) * 64

    def test_counter_replay_detected_with_counter_tree(self):
        from repro.security.engine import CryptoEngine, SecureMemory

        engine = CryptoEngine(tree=SgxCounterTree(KEY, height=4, arity=8))
        memory = SecureMemory(engine=engine, atomic=True)
        memory.persist_block(0, b"a" * 64)
        old = memory.counters.page(0).copy()
        memory.persist_block(0, b"b" * 64)
        memory.replay_counter(0, old)
        from repro.security.engine import RecoveryStatus

        assert (
            memory.recover_block(0).status
            is RecoveryStatus.COUNTER_INTEGRITY_FAILURE
        )
