"""The scheme-invariant checker (SPB201-204) against real and broken tables."""

from __future__ import annotations

import textwrap

from repro.lint import lint_file, select_rules
from repro.lint.scheme_invariants import FIG4_CHAIN, NAME_LETTERS

SCHEME_RULES = ["SPB201", "SPB202", "SPB203", "SPB204"]

TABLE_PRELUDE = """
import enum


class MetadataStep(enum.Enum):
    COUNTER = "counter"
    OTP = "otp"
    BMT_ROOT = "bmt_root"
    CIPHERTEXT = "ciphertext"
    MAC = "mac"


ALL_STEPS = (
    MetadataStep.COUNTER,
    MetadataStep.OTP,
    MetadataStep.BMT_ROOT,
    MetadataStep.CIPHERTEXT,
    MetadataStep.MAC,
)

VALUE_INDEPENDENT_STEPS = frozenset(
    {MetadataStep.COUNTER, MetadataStep.OTP, MetadataStep.BMT_ROOT}
)
VALUE_DEPENDENT_STEPS = frozenset(
    {MetadataStep.CIPHERTEXT, MetadataStep.MAC}
)


class TableScheme:
    def __init__(self, name, late):
        self.name = name
        self.late_steps = frozenset(late)
        self.early_steps = frozenset(ALL_STEPS) - self.late_steps
"""


def write_table(tmp_path, body, prelude=TABLE_PRELUDE):
    path = tmp_path / "schemes_table.py"
    path.write_text(textwrap.dedent(prelude) + textwrap.dedent(body))
    return path


def lint_table(path):
    return lint_file(path, rules=select_rules(select=SCHEME_RULES))


def codes(findings):
    return sorted({f.code for f in findings})


def test_real_scheme_table_is_clean():
    import repro.core.schemes as schemes_module
    from pathlib import Path

    findings = lint_file(
        Path(schemes_module.__file__), rules=select_rules(select=SCHEME_RULES)
    )
    assert findings == []


def test_valid_suffix_table_accepted(tmp_path):
    path = write_table(
        tmp_path,
        """
        SCHEMES = {
            "nogap": TableScheme("nogap", []),
            "m": TableScheme("m", [MetadataStep.MAC]),
            "cm": TableScheme("cm", [MetadataStep.CIPHERTEXT, MetadataStep.MAC]),
            "cobcm": TableScheme("cobcm", ALL_STEPS),
        }
        """,
    )
    assert lint_table(path) == []


def test_spb201_non_suffix_late_set_rejected(tmp_path):
    # OTP late while BMT root (which depends on nothing later) is early:
    # late = {otp, ciphertext, mac} is NOT a chain suffix.
    path = write_table(
        tmp_path,
        """
        SCHEMES = {
            "ocm": TableScheme(
                "ocm",
                [MetadataStep.OTP, MetadataStep.CIPHERTEXT, MetadataStep.MAC],
            ),
        }
        """,
    )
    findings = lint_table(path)
    assert "SPB201" in codes(findings)


def test_spb202_overlapping_sets_rejected(tmp_path):
    path = write_table(
        tmp_path,
        """
        bad = TableScheme("m", [MetadataStep.MAC])
        bad.early_steps = frozenset(ALL_STEPS)  # MAC now both early and late
        SCHEMES = {"m": bad}
        """,
    )
    findings = lint_table(path)
    assert "SPB202" in codes(findings)


def test_spb202_missing_step_rejected(tmp_path):
    path = write_table(
        tmp_path,
        """
        bad = TableScheme("m", [MetadataStep.MAC])
        bad.early_steps = frozenset({MetadataStep.COUNTER})  # 3 steps dropped
        SCHEMES = {"m": bad}
        """,
    )
    findings = lint_table(path)
    assert "SPB202" in codes(findings)


def test_spb203_name_not_encoding_late_steps(tmp_path):
    path = write_table(
        tmp_path,
        """
        SCHEMES = {
            "fastlazy": TableScheme(
                "fastlazy", [MetadataStep.CIPHERTEXT, MetadataStep.MAC]
            ),
        }
        """,
    )
    findings = lint_table(path)
    assert "SPB203" in codes(findings)
    assert any("'cm'" in f.message for f in findings)


def test_spb203_registry_key_mismatch(tmp_path):
    path = write_table(
        tmp_path,
        """
        SCHEMES = {
            "m": TableScheme("cm", [MetadataStep.CIPHERTEXT, MetadataStep.MAC]),
        }
        """,
    )
    findings = lint_table(path)
    assert "SPB203" in codes(findings)


def test_spb204_value_dependent_step_misclassified(tmp_path):
    # Reclassifying the ciphertext as value-independent would let the
    # coalescing optimization skip re-encrypting after a new store.
    path = write_table(
        tmp_path,
        """
        VALUE_INDEPENDENT_STEPS = frozenset(
            {
                MetadataStep.COUNTER,
                MetadataStep.OTP,
                MetadataStep.BMT_ROOT,
                MetadataStep.CIPHERTEXT,
            }
        )
        VALUE_DEPENDENT_STEPS = frozenset({MetadataStep.MAC})
        SCHEMES = {
            "m": TableScheme("m", [MetadataStep.MAC]),
        }
        """,
    )
    findings = lint_table(path)
    assert "SPB204" in codes(findings)


def test_spb204_unclassified_step(tmp_path):
    path = write_table(
        tmp_path,
        """
        VALUE_INDEPENDENT_STEPS = frozenset(
            {MetadataStep.COUNTER, MetadataStep.OTP}
        )
        VALUE_DEPENDENT_STEPS = frozenset(
            {MetadataStep.CIPHERTEXT, MetadataStep.MAC}
        )
        SCHEMES = {
            "nogap": TableScheme("nogap", []),
        }
        """,
    )
    findings = lint_table(path)
    assert "SPB204" in codes(findings)
    assert any("bmt_root" in f.message for f in findings)


def test_unloadable_table_reports_import_error(tmp_path):
    path = tmp_path / "schemes_table.py"
    path.write_text("import does_not_exist_anywhere\nSCHEMES = {}\n")
    findings = lint_file(path, rules=select_rules(select=["SPB201"]))
    assert len(findings) == 1
    assert "failed to import" in findings[0].message


def test_non_scheme_files_skip_semantic_rules(tmp_path):
    path = tmp_path / "other.py"
    path.write_text("X = 1\n")
    assert lint_file(path, rules=select_rules(select=SCHEME_RULES)) == []


def test_checker_constants_match_paper_chain():
    assert FIG4_CHAIN == ("counter", "otp", "bmt_root", "ciphertext", "mac")
    # Names spell late steps: c/o/b/c/m with ciphertext reusing 'c'.
    assert NAME_LETTERS["counter"] == NAME_LETTERS["ciphertext"] == "c"
