"""The execution plane: zero-copy trace segments + warm worker pools.

Acceptance anchors (ISSUE 8):

* a published trace round-trips through shared memory byte-identical,
  as **read-only** views, and is digest-verified on attach — a torn or
  recycled segment falls back to regeneration instead of feeding a
  simulation;
* the owner unlinks every segment exactly once (idempotent cleanup, no
  ``/dev/shm`` residue);
* ``run_tasks``/``run_jobs`` share one warm pool across calls (the fork
  generation does not advance), recycle it after a worker crash, and
  batched dispatch returns byte-identical results to serial;
* with the plane on, a trace is materialized **at most once per run**:
  the parent builds each distinct key once, workers only attach
  (``runner.worker_traces_built`` stays zero).
"""

from __future__ import annotations

import os
import pickle
import sys
from dataclasses import dataclass

import numpy as np
import pytest

from repro.analysis.runner import SimJob, SimSpec, JobFailure, run_jobs, run_tasks
from repro.obs.metrics import MetricsRegistry
from repro.runtime import pool as pool_mod
from repro.runtime import shm
from repro.runtime.pool import (
    WorkerPool,
    get_shared_pool,
    plane_enabled,
    pool_stats,
    shutdown_shared_pool,
)
from repro.runtime.shm import (
    SharedTraceRegistry,
    TraceAttachSetup,
    announce,
    announced_keys,
    attach_trace,
    cleanup_shared_registry,
    reset_attachments,
    segment_prefix,
    shm_enabled,
)
from repro.workloads.spec import build_trace
from repro.workloads.store import DEFAULT_STORE, trace_digest

HAS_DEV_SHM = os.path.isdir("/dev/shm")


@pytest.fixture(autouse=True)
def plane_isolation(monkeypatch):
    """Run every test against a cold plane, and leave nothing behind."""
    monkeypatch.setenv("SECPB_EXEC_PLANE", "1")
    monkeypatch.setenv("SECPB_TRACE_SHM", "1")
    reset_attachments()
    shutdown_shared_pool()
    cleanup_shared_registry()
    yield
    reset_attachments()
    shutdown_shared_pool()
    cleanup_shared_registry()


def _segment_file(name):
    return os.path.join("/dev/shm", name)


class TestSharedTraceRegistry:
    KEY = ("povray", 384, 97)

    def _publish(self, registry, key=None, digest=None):
        key = key or self.KEY
        trace = build_trace(*key)
        digest = digest or trace_digest(trace)
        return trace, registry.publish(key, trace, digest)

    def test_publish_attach_roundtrip_byte_identical(self):
        registry = SharedTraceRegistry()
        try:
            trace, info = self._publish(registry)
            announce([info])
            attached, digest = attach_trace(self.KEY)
            assert digest == info.digest
            assert attached.name == trace.name
            assert np.array_equal(attached.is_store, trace.is_store)
            assert np.array_equal(attached.block_addr, trace.block_addr)
            assert np.array_equal(attached.gap, trace.gap)
        finally:
            reset_attachments()
            registry.cleanup()

    def test_attached_views_are_read_only(self):
        registry = SharedTraceRegistry()
        try:
            _, info = self._publish(registry)
            announce([info])
            attached, _ = attach_trace(self.KEY)
            for column in (attached.is_store, attached.block_addr, attached.gap):
                assert not column.flags.writeable
            with pytest.raises(ValueError):
                attached.gap[0] = 123
        finally:
            reset_attachments()
            registry.cleanup()

    def test_publish_is_idempotent_per_key(self):
        registry = SharedTraceRegistry()
        try:
            trace, first = self._publish(registry)
            again = registry.publish(self.KEY, trace, first.digest)
            assert again is first
            assert registry.published == 1
            assert len(registry) == 1
            assert registry.stats()["segments"] == 1
            assert registry.stats()["bytes"] == first.size
        finally:
            registry.cleanup()

    @pytest.mark.skipif(not HAS_DEV_SHM, reason="requires /dev/shm")
    def test_cleanup_unlinks_and_is_idempotent(self):
        registry = SharedTraceRegistry()
        _, info = self._publish(registry)
        assert os.path.exists(_segment_file(info.segment))
        assert info.segment.startswith(segment_prefix())
        assert registry.cleanup() == 1
        assert not os.path.exists(_segment_file(info.segment))
        assert registry.cleanup() == 0

    def test_attach_after_unlink_falls_back_and_drops_key(self):
        registry = SharedTraceRegistry()
        _, info = self._publish(registry)
        announce([info])
        registry.cleanup()
        assert attach_trace(self.KEY) is None
        # The stale announcement is dropped: the rebuild cost is paid
        # once, not on every subsequent lookup.
        assert self.KEY not in announced_keys()

    def test_attach_rejects_digest_mismatch(self):
        registry = SharedTraceRegistry()
        try:
            self._publish(registry, digest="0" * 64)
            announce(registry.manifest())
            assert attach_trace(self.KEY) is None
            assert self.KEY not in announced_keys()
        finally:
            reset_attachments()
            registry.cleanup()

    def test_env_gate_disables_attach(self, monkeypatch):
        registry = SharedTraceRegistry()
        try:
            _, info = self._publish(registry)
            announce([info])
            monkeypatch.setenv("SECPB_TRACE_SHM", "0")
            assert not shm_enabled()
            assert attach_trace(self.KEY) is None
        finally:
            reset_attachments()
            registry.cleanup()

    def test_attach_setup_survives_pickling(self):
        registry = SharedTraceRegistry()
        try:
            _, info = self._publish(registry)
            setup = TraceAttachSetup(manifest=(info,))
            restored = pickle.loads(pickle.dumps(setup))
            reset_attachments()
            restored()
            assert self.KEY in announced_keys()
        finally:
            reset_attachments()
            registry.cleanup()


class TestAttachRetry:
    """ENOENT on attach retries on a bounded backoff (ISSUE 9)."""

    KEY = ("povray", 384, 97)

    def _plan(self, kind, count=1):
        from repro.envfault import FaultPlan, FaultSpec

        return FaultPlan(
            seed=0,
            specs=(FaultSpec(op="shm.attach", index=0, kind=kind, count=count),),
        )

    def test_transient_enoent_retried_then_succeeds(self):
        from repro.envfault import injected

        registry = SharedTraceRegistry()
        try:
            trace = build_trace(*self.KEY)
            info = registry.publish(self.KEY, trace, trace_digest(trace))
            announce([info])
            before = shm.attach_retries()
            with injected(self._plan("attach_enoent", count=2)) as context:
                result = attach_trace(self.KEY)
            assert result is not None
            attached, digest = result
            assert digest == info.digest
            assert np.array_equal(attached.gap, trace.gap)
            # Two faulted attempts -> two retries, success on the third.
            assert shm.attach_retries() - before == 2
            assert len(context.fired) == 2
            assert self.KEY in announced_keys()
        finally:
            reset_attachments()
            registry.cleanup()

    def test_vanished_segment_not_retried(self):
        from repro.envfault import injected

        registry = SharedTraceRegistry()
        try:
            trace = build_trace(*self.KEY)
            info = registry.publish(self.KEY, trace, trace_digest(trace))
            announce([info])
            before = shm.attach_retries()
            with injected(self._plan("segment_vanish")):
                assert attach_trace(self.KEY) is None
            # An unlinked segment will not come back: no retries burned,
            # stale announcement dropped so the rebuild is paid once.
            assert shm.attach_retries() == before
            assert self.KEY not in announced_keys()
        finally:
            reset_attachments()
            registry.cleanup()

    def test_persistent_enoent_exhausts_budget_and_falls_back(self):
        from repro.envfault import injected

        registry = SharedTraceRegistry()
        try:
            trace = build_trace(*self.KEY)
            info = registry.publish(self.KEY, trace, trace_digest(trace))
            announce([info])
            before = shm.attach_retries()
            budget = shm.ATTACH_RETRY_POLICY.attempts
            with injected(self._plan("attach_enoent", count=budget)):
                assert attach_trace(self.KEY) is None
            assert shm.attach_retries() - before == budget - 1
            assert self.KEY not in announced_keys()
        finally:
            reset_attachments()
            registry.cleanup()

    def test_injected_digest_mismatch_falls_back(self):
        from repro.envfault import FaultPlan, FaultSpec, injected

        registry = SharedTraceRegistry()
        try:
            trace = build_trace(*self.KEY)
            info = registry.publish(self.KEY, trace, trace_digest(trace))
            announce([info])
            plan = FaultPlan(
                seed=0,
                specs=(FaultSpec(op="shm.verify", index=0, kind="digest_mismatch"),),
            )
            with injected(plan):
                assert attach_trace(self.KEY) is None
            assert self.KEY not in announced_keys()
        finally:
            reset_attachments()
            registry.cleanup()

    def test_retry_delays_deterministic_and_bounded(self):
        digest = "deadbeef" + "0" * 56
        policy = shm.ATTACH_RETRY_POLICY
        first = policy.delays(digest)
        assert first == policy.delays(digest)
        assert len(first) == policy.attempts - 1
        # The policy's exponential schedule reproduces the plane's
        # historical (0.005, 0.02) base tuple exactly, jittered by the
        # digest nibbles within [1, 1 + 15/32).
        for delay, base in zip(first, (0.005, 0.02)):
            assert base <= delay <= base * 1.5
        # A non-hex digest hashes to a token: still deterministic,
        # still bounded by the same jitter envelope.
        fallback = policy.delays("not-hex!")
        assert fallback == policy.delays("not-hex!")
        for delay, base in zip(fallback, (0.005, 0.02)):
            assert base <= delay <= base * 1.5

    def test_attach_schedule_matches_pre_migration_backoff(self):
        # Golden check for the resilience migration: for any hex digest
        # the policy's schedule must equal the hand-rolled formula the
        # plane used before (base * (1 + nibble/32)).
        for digest in ("deadbeef" + "0" * 56, "00" * 32, "f" * 64):
            token = int(digest[:8], 16)
            expected = tuple(
                base * (1.0 + ((token >> (4 * i)) & 0xF) / 32.0)
                for i, base in enumerate((0.005, 0.02))
            )
            assert shm.ATTACH_RETRY_POLICY.delays(digest) == expected


@dataclass(frozen=True)
class Task:
    key: str
    value: int = 0


def _double(task: Task) -> int:
    return task.value * 2


def _exit_hard(task: Task) -> int:
    os._exit(13)  # simulate a worker segfault: no exception, no cleanup


class TestWarmPool:
    def test_shared_pool_reused_across_runs(self):
        tasks = [Task(str(i), i) for i in range(6)]
        expected = {str(i): i * 2 for i in range(6)}
        assert run_tasks(tasks, _double, workers=2) == expected
        first = pool_stats()
        assert first["healthy"] == 1 and first["runs"] == 1
        assert run_tasks(tasks, _double, workers=2) == expected
        second = pool_stats()
        # Same fork generation serving run after run — that is the tax
        # the warm pool exists to remove.
        assert second["generation"] == first["generation"]
        assert second["pools_created"] == first["pools_created"]
        assert second["runs"] == 2

    def test_worker_count_change_recycles_pool(self):
        tasks = [Task(str(i), i) for i in range(4)]
        run_tasks(tasks, _double, workers=2)
        first = pool_stats()
        run_tasks(tasks, _double, workers=3)
        second = pool_stats()
        assert second["workers"] == 3
        assert second["generation"] > first["generation"]

    def test_worker_crash_records_and_recycles(self):
        tasks = [Task(str(i), i) for i in range(4)]
        results = run_tasks(
            tasks, _exit_hard, workers=2, on_error="record", retries=0
        )
        assert all(isinstance(r, JobFailure) for r in results.values())
        crashed = pool_stats()
        assert crashed["healthy"] == 0
        # The next acquisition forks a fresh generation and recovers.
        assert run_tasks(tasks, _double, workers=2) == {
            str(i): i * 2 for i in range(4)
        }
        recovered = pool_stats()
        assert recovered["healthy"] == 1
        assert recovered["generation"] > crashed["generation"]

    def test_chunked_results_byte_identical_to_serial(self):
        tasks = [Task(str(i), i) for i in range(11)]
        serial = run_tasks(tasks, _double, workers=1)
        for chunk in (1, 3, 16):
            chunked = run_tasks(tasks, _double, workers=2, chunk=chunk)
            assert chunked == serial
            assert list(chunked) == list(serial)

    def test_invalid_chunk_rejected(self):
        tasks = [Task("a", 1), Task("b", 2)]
        with pytest.raises(ValueError, match="chunk"):
            run_tasks(tasks, _double, workers=2, chunk=0)

    def test_legacy_mode_uses_no_shared_pool(self, monkeypatch):
        monkeypatch.setenv("SECPB_EXEC_PLANE", "0")
        assert not plane_enabled()
        tasks = [Task(str(i), i) for i in range(4)]
        assert run_tasks(tasks, _double, workers=2) == {
            str(i): i * 2 for i in range(4)
        }
        assert pool_stats()["generation"] == 0  # nothing warm survives

    def test_explicit_pool_is_respected_and_left_running(self):
        tasks = [Task(str(i), i) for i in range(4)]
        pool = WorkerPool(2, persistent=True)
        try:
            assert run_tasks(tasks, _double, workers=2, pool=pool) == {
                str(i): i * 2 for i in range(4)
            }
            assert pool.healthy
        finally:
            pool.shutdown()

    def test_worker_pool_validates_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(0)


def _sweep_jobs(num_ops=400):
    spec = SimSpec(scheme="m")
    return [
        SimJob(
            key=("m", benchmark, seed),
            benchmark=benchmark,
            num_ops=num_ops,
            seed=seed,
            warmup_frac=0.0,
            spec=spec,
        )
        for benchmark in ("gamess", "mcf")
        for seed in (1, 2)
    ]


class TestTraceMaterializedOncePerRun:
    """Satellite 1: attach-first is the default, builds happen once."""

    def test_parallel_run_builds_each_trace_once_in_parent(self):
        DEFAULT_STORE.clear()
        metrics = MetricsRegistry()
        first = run_jobs(_sweep_jobs(num_ops=400), workers=2, metrics=metrics)
        assert len(first) == 4
        # The parent materialized each distinct (benchmark, num_ops,
        # seed) exactly once before the pool forked; no worker rebuilt.
        assert DEFAULT_STORE.built == 4
        snapshot = metrics.snapshot(include_nondeterministic=True)
        assert snapshot["runner.worker_traces_built"]["value"] == 0

        # A second sweep over *new* trace keys runs on the warm pool,
        # whose workers predate these traces: they must adopt the
        # zero-copy segments instead of rebuilding.
        second = run_jobs(_sweep_jobs(num_ops=512), workers=2, metrics=metrics)
        assert len(second) == 4
        assert DEFAULT_STORE.built == 8
        snapshot = metrics.snapshot(include_nondeterministic=True)
        assert snapshot["runner.worker_traces_built"]["value"] == 0
        assert snapshot["runner.worker_trace_attaches"]["value"] >= 1
        assert snapshot["store.shm_segments"]["value"] == 8

    def test_parallel_output_matches_serial(self):
        DEFAULT_STORE.clear()
        jobs = _sweep_jobs()
        parallel = run_jobs(jobs, workers=2)
        DEFAULT_STORE.clear()
        serial = run_jobs(jobs, workers=1)
        assert parallel == serial
        assert list(parallel) == list(serial)

    @pytest.mark.skipif(not HAS_DEV_SHM, reason="requires /dev/shm")
    def test_worker_crash_does_not_unlink_live_segments(self):
        """A dying worker must never tear down the owner's segments.

        Workers inherit the owner's multiprocessing resource tracker
        (ensured before the first fork); a private per-worker tracker
        would "helpfully" unlink every attached segment when the worker
        exits, yanking mappings out from under its siblings.
        """
        registry = shm.shared_registry()
        trace = build_trace("povray", 256, 31)
        info = registry.publish(
            ("povray", 256, 31), trace, trace_digest(trace)
        )
        tasks = [Task(str(i), i) for i in range(4)]
        results = run_tasks(
            tasks, _exit_hard, workers=2, on_error="record", retries=0
        )
        assert all(isinstance(r, JobFailure) for r in results.values())
        # The crash reaped the pool, not the plane.
        assert os.path.exists(_segment_file(info.segment))
        cleanup_shared_registry()
        assert not os.path.exists(_segment_file(info.segment))

    def test_segments_disabled_still_correct(self, monkeypatch):
        monkeypatch.setenv("SECPB_TRACE_SHM", "0")
        DEFAULT_STORE.clear()
        jobs = _sweep_jobs()
        metrics = MetricsRegistry()
        results = run_jobs(jobs, workers=2, metrics=metrics)
        assert len(results) == len(jobs)
        snapshot = metrics.snapshot(include_nondeterministic=True)
        # No plane: workers fall back to deterministic regeneration.
        assert snapshot.get("store.shm_segments", {"value": 0})["value"] == 0
