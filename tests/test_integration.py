"""Cross-layer integration tests: functional and timing layers agree.

The functional system (:class:`SecurePersistentSystem`) and the timing
simulator (:class:`SecurePersistencySimulator`) implement the same SecPB
structure and drain policy; driving both with the same reference stream
must produce the same *structural* behaviour (allocations, coalescing),
even though one computes real crypto and the other prices cycles.
"""

import numpy as np
import pytest

from repro.core.crash import SecurePersistentSystem
from repro.core.schemes import SPECTRUM_ORDER, get_scheme
from repro.core.simulator import SecurePersistencySimulator
from repro.workloads.synthetic import zipf_trace
from repro.workloads.trace import Trace


@pytest.fixture(scope="module")
def store_trace():
    """A stores-only trace (the functional system only takes stores)."""
    base = zipf_trace(
        num_ops=1200,
        working_set_blocks=150,
        zipf_alpha=0.7,
        store_fraction=1.0,
        burst_length=3,
        mean_gap=2.0,
        seed=31,
        name="integration",
    )
    return base


class TestStructuralAgreement:
    @pytest.mark.parametrize("scheme_name", ["cobcm", "cm", "nogap"])
    def test_allocation_counts_match(self, store_trace, scheme_name):
        """Same stream, same buffer geometry -> same allocation count in
        the functional system and the timing simulator."""
        scheme = get_scheme(scheme_name)

        functional = SecurePersistentSystem(scheme)
        for is_store, block, _ in store_trace.iter_ops():
            assert is_store
            functional.store(block, bytes([block % 256]) * 64)
        functional_allocs = functional.secpb.stats.get("secpb.allocations")

        timing = SecurePersistencySimulator(scheme=scheme).run(store_trace)
        assert timing.stats["secpb.allocations"] == functional_allocs
        assert timing.stats["secpb.writes"] == len(store_trace)

    def test_functional_recovery_after_timing_equivalent_stream(self, store_trace):
        """The stream the timing model prices is fully recoverable in the
        functional model — timing and correctness describe one design."""
        functional = SecurePersistentSystem(get_scheme("bcm"))
        latest = {}
        for _, block, _ in store_trace.iter_ops():
            payload = bytes([(block * 31) % 256]) * 64
            functional.store(block, payload)
            latest[block] = payload
        functional.crash()
        recovery = functional.recover()
        assert recovery.ok, recovery.failure_summary()
        assert recovery.blocks_checked == len(latest)


class TestSchemeInvariance:
    def test_coalescing_statistics_are_scheme_independent(self, store_trace):
        """PPTI/NWPE are properties of the buffer and workload, not of the
        metadata scheme (Fig. 8's flat rows)."""
        reference = None
        for name in SPECTRUM_ORDER:
            result = SecurePersistencySimulator(scheme=get_scheme(name)).run(
                store_trace
            )
            key = (
                result.stats["secpb.allocations"],
                result.stats["secpb.writes"],
            )
            if reference is None:
                reference = key
            assert key == reference, name

    def test_instructions_are_scheme_independent(self, store_trace):
        counts = {
            name: SecurePersistencySimulator(scheme=get_scheme(name))
            .run(store_trace)
            .instructions
            for name in SPECTRUM_ORDER
        }
        assert len(set(counts.values())) == 1


class TestTraceEquivalence:
    def test_saved_trace_reproduces_cycles(self, store_trace, tmp_path):
        """Save/load round-trips produce bit-identical simulations."""
        path = str(tmp_path / "t.npz")
        store_trace.save(path)
        loaded = Trace.load(path)
        sim = SecurePersistencySimulator(scheme=get_scheme("cm"))
        a = sim.run(store_trace)
        b = SecurePersistencySimulator(scheme=get_scheme("cm")).run(loaded)
        assert a.cycles == b.cycles
