"""End-to-end crash/recovery tests — the paper's central claims.

* Every SecPB scheme yields fully verifiable, correct plaintext after a
  crash (the battery drains + sec-syncs).
* The naive persistent hierarchy (PoP up, SPoP at the MC) fails recovery —
  the recoverability gap of Fig. 1(b).
* The threat model's attacks (tamper, splice, counter replay) are detected.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bbb import PlaintextPersistentSystem
from repro.core.crash import (
    AppCrashPolicy,
    CrashVerdict,
    GappedPersistentSystem,
    SecurePersistentSystem,
)
from repro.core.recovery import ObserverPolicy, RecoveryBlocked, RecoveryVerdict
from repro.core.schemes import SPECTRUM_ORDER, get_scheme
from repro.security.engine import RecoveryStatus


def blk(i):
    return bytes([i % 251, (i * 7) % 251]) * 32


class TestSchemesRecover:
    @pytest.mark.parametrize("name", SPECTRUM_ORDER)
    def test_crash_recovery_roundtrip(self, name):
        """Invariant 1 end to end: every store that reached the SecPB is
        recoverable with integrity intact, for every scheme."""
        system = SecurePersistentSystem(get_scheme(name))
        for i in range(120):
            system.store(i % 50, blk(i))
        report = system.crash()
        assert report.invariants_ok, report.invariant_violation
        recovery = system.recover()
        assert recovery.ok, recovery.failure_summary()
        assert recovery.blocks_checked == 50

    @pytest.mark.parametrize("name", ["cobcm", "nogap"])
    def test_recovered_plaintext_matches_last_store(self, name):
        system = SecurePersistentSystem(get_scheme(name))
        system.store(7, blk(1))
        system.store(7, blk(2))  # overwrites
        system.crash()
        recovery = system.recover()
        verdict = recovery.verdicts[0]
        assert verdict.matches_expected
        recovered = system.memory.recover_block(7)
        assert recovered.plaintext == blk(2)

    def test_crash_with_empty_secpb(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        system.store(1, blk(1))
        system.flush()
        report = system.crash()
        assert report.entries_drained == 0
        assert system.recover().ok

    def test_late_steps_counted(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        system.store(1, blk(1))
        system.store(2, blk(2))
        report = system.crash()
        assert report.entries_drained == 2
        assert report.late_steps_completed == 2 * 5  # all five steps late

    def test_nogap_has_no_late_steps(self):
        system = SecurePersistentSystem(get_scheme("nogap"))
        system.store(1, blk(1))
        report = system.crash()
        assert report.late_steps_completed == 0

    def test_store_after_crash_rejected(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        system.store(1, blk(1))
        system.crash()
        with pytest.raises(RuntimeError, match="crashed"):
            system.store(2, blk(2))

    def test_store_rejects_wrong_size(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        with pytest.raises(ValueError, match="block-granular"):
            system.store(1, b"short")

    def test_many_stores_spill_through_watermarks(self):
        """Stores far beyond SecPB capacity drain through the MC and stay
        recoverable."""
        system = SecurePersistentSystem(get_scheme("cm"))
        for i in range(500):
            system.store(i, blk(i))
        system.crash()
        recovery = system.recover()
        assert recovery.ok, recovery.failure_summary()
        assert recovery.blocks_checked == 500


class TestRecoverabilityGap:
    def test_gapped_system_fails_recovery(self):
        """Fig. 1(b): metadata stuck in volatile caches at crash time makes
        recovery fail."""
        system = GappedPersistentSystem()
        for i in range(20):
            system.store(i, blk(i))
        system.crash()
        recovery = system.recover()
        assert not recovery.ok
        assert len(recovery.failures) == 20

    def test_gapped_system_recovers_if_metadata_written_back_in_time(self):
        system = GappedPersistentSystem()
        for i in range(20):
            system.store(i, blk(i))
        system.writeback_metadata()
        system.crash()
        assert system.recover().ok

    def test_gap_failure_mode_is_stale_metadata(self):
        """Re-writing after a writeback leaves durable metadata one version
        behind: the MAC check must fail (wrong plaintext would decrypt)."""
        system = GappedPersistentSystem()
        system.store(3, blk(1))
        system.writeback_metadata()
        system.store(3, blk(2))  # counter bump only in volatile overlay
        system.crash()
        recovered = system.memory.recover_block(3)
        assert recovered.status is RecoveryStatus.MAC_FAILURE

    def test_never_written_back_metadata_is_absent(self):
        system = GappedPersistentSystem()
        system.store(3, blk(1))
        system.crash()
        recovered = system.memory.recover_block(3)
        assert recovered.status is RecoveryStatus.NOT_PRESENT


class TestAttackDetection:
    def _recovered_system(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        for i in range(10):
            system.store(i, blk(i))
        system.crash()
        return system

    def test_tampered_ciphertext_detected(self):
        system = self._recovered_system()
        system.memory.tamper_data(3, b"\xff" * 64)
        recovered = system.memory.recover_block(3)
        assert recovered.status is RecoveryStatus.MAC_FAILURE

    def test_spliced_ciphertext_detected(self):
        system = self._recovered_system()
        system.memory.splice_data(from_addr=2, to_addr=3)
        recovered = system.memory.recover_block(3)
        assert recovered.status is RecoveryStatus.MAC_FAILURE

    def test_replayed_counter_detected_by_bmt(self):
        """Rolling a counter block back to an old version must fail the
        BMT check against the on-chip root register."""
        system = SecurePersistentSystem(get_scheme("cobcm"))
        system.store(3, blk(1))
        system.flush()
        old_counters = system.memory.counters.page(0).copy()
        system.store(3, blk(2))
        system.crash()
        system.memory.replay_counter(0, old_counters)
        recovered = system.memory.recover_block(3)
        assert recovered.status is RecoveryStatus.COUNTER_INTEGRITY_FAILURE

    def test_untouched_blocks_still_recover_after_attack(self):
        system = self._recovered_system()
        system.memory.tamper_data(3, b"\xff" * 64)
        assert system.memory.recover_block(4).ok


class TestAppCrashPolicies:
    def test_drain_all_drains_everything(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        system.store(1, blk(1), asid=1)
        system.store(2, blk(2), asid=2)
        report = system.app_crash(asid=1, policy=AppCrashPolicy.DRAIN_ALL)
        assert report.entries_drained == 2
        assert system.secpb.occupancy == 0

    def test_drain_process_preserves_other_processes(self):
        """Sec. III-B: drain-process keeps other ASIDs' coalescing."""
        system = SecurePersistentSystem(get_scheme("cobcm"))
        system.store(1, blk(1), asid=1)
        system.store(2, blk(2), asid=2)
        report = system.app_crash(asid=1, policy=AppCrashPolicy.DRAIN_PROCESS)
        assert report.entries_drained == 1
        assert system.secpb.occupancy == 1
        assert system.secpb.lookup(2) is not None

    def test_app_crash_keeps_system_alive(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        system.store(1, blk(1), asid=1)
        system.app_crash(asid=1)
        system.store(2, blk(2), asid=1)  # machine still up
        system.crash()
        assert system.recover().ok

    def test_drained_process_data_is_recoverable(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        system.store(1, blk(1), asid=1)
        system.app_crash(asid=1, policy=AppCrashPolicy.DRAIN_PROCESS)
        recovered = system.memory.recover_block(1)
        assert recovered.ok and recovered.plaintext == blk(1)


class TestDoubleCrashGuard:
    def test_second_system_crash_rejected(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        system.store(1, blk(1))
        system.crash()
        with pytest.raises(RuntimeError, match="already crashed"):
            system.crash()

    def test_app_crash_after_system_crash_rejected(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        system.store(1, blk(1), asid=1)
        system.crash()
        with pytest.raises(RuntimeError, match="already crashed"):
            system.app_crash(asid=1)

    def test_app_crash_then_system_crash_is_fine(self):
        """An app crash leaves the machine up; only power loss is final."""
        system = SecurePersistentSystem(get_scheme("cobcm"))
        system.store(1, blk(1), asid=1)
        system.app_crash(asid=1)
        system.crash()
        assert system.recover().ok


class TestBatteryBrownout:
    def test_zero_budget_loses_everything_resident(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        for i in range(5):
            system.store(i, blk(i))
        report = system.crash(energy_budget_nj=0.0)
        assert report.verdict is CrashVerdict.PARTIAL
        assert report.entries_drained == 0
        assert report.unpersisted_blocks == [0, 1, 2, 3, 4]
        assert report.energy_spent_nj == 0.0

    def test_partial_budget_drains_a_prefix(self):
        """The battery drains oldest-first until the next entry would
        overrun the budget; the rest is recorded, never silently dropped."""
        system = SecurePersistentSystem(get_scheme("cobcm"))
        for i in range(6):
            system.store(i, blk(i))
        report = system.crash(energy_budget_nj=2.5, per_entry_nj=1.0)
        assert report.entries_drained == 2
        assert report.unpersisted_blocks == [2, 3, 4, 5]
        assert report.energy_spent_nj == pytest.approx(2.0)
        assert report.energy_budget_nj == pytest.approx(2.5)

    def test_brownout_recovery_grades_partial_not_failed(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        for i in range(6):
            system.store(i, blk(i))
        system.crash(energy_budget_nj=2.5, per_entry_nj=1.0)
        recovery = system.recover()
        assert not recovery.ok
        assert recovery.verdict is RecoveryVerdict.PARTIAL
        failed = {v.block_addr for v in recovery.failures}
        assert failed <= {2, 3, 4, 5}
        # The drained prefix is still fully recoverable.
        for addr in (0, 1):
            assert system.memory.recover_block(addr).plaintext == blk(addr)

    def test_sufficient_budget_is_complete(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        for i in range(4):
            system.store(i, blk(i))
        report = system.crash(energy_budget_nj=100.0, per_entry_nj=1.0)
        assert report.verdict is CrashVerdict.COMPLETE
        assert report.unpersisted_blocks == []
        assert system.recover().verdict is RecoveryVerdict.OK

    def test_tamper_on_brownout_state_is_failed_not_partial(self):
        """A failure OUTSIDE the declared-lost set must never hide behind
        the PARTIAL grade."""
        system = SecurePersistentSystem(get_scheme("cobcm"))
        for i in range(6):
            system.store(i, blk(i))
        system.crash(energy_budget_nj=2.5, per_entry_nj=1.0)
        system.memory.tamper_data(0, b"\xff" * 64)  # a *drained* block
        recovery = system.recover()
        assert recovery.verdict is RecoveryVerdict.FAILED

    def test_default_per_entry_energy_comes_from_energy_model(self):
        from repro.energy.battery import per_entry_drain_energy_nj

        scheme = get_scheme("cobcm")
        per_entry = per_entry_drain_energy_nj(scheme)
        system = SecurePersistentSystem(scheme)
        for i in range(4):
            system.store(i, blk(i))
        report = system.crash(energy_budget_nj=2.5 * per_entry)
        assert report.entries_drained == 2
        assert report.energy_spent_nj == pytest.approx(2 * per_entry)


class TestDrainProcessAcrossSchemes:
    """Satellite coverage: DRAIN_PROCESS app-crash recovery for every
    scheme with interleaved multi-ASID store streams."""

    @pytest.mark.parametrize("name", SPECTRUM_ORDER)
    def test_drain_process_victim_durable_all_schemes(self, name):
        system = SecurePersistentSystem(get_scheme(name))
        num_asids = 3
        latest = {}
        # Interleaved stores: consecutive stores come from different ASIDs
        # and blocks are owned by (addr % num_asids).
        for i in range(90):
            addr = (i * 7) % 30
            payload = blk(i)
            system.store(addr, payload, asid=addr % num_asids)
            latest[addr] = payload
        victim = 1
        report = system.app_crash(
            asid=victim, policy=AppCrashPolicy.DRAIN_PROCESS
        )
        assert report.invariants_ok, report.invariant_violation
        # Every victim-owned block is durable and correct right now...
        victim_blocks = [a for a in latest if a % num_asids == victim]
        assert victim_blocks
        for addr in victim_blocks:
            recovered = system.memory.recover_block(addr)
            assert recovered.ok, (name, addr, recovered.status)
            assert recovered.plaintext == latest[addr]
        # ...while survivors' entries stayed resident for coalescing.
        assert all(
            entry.asid != victim for entry in system.secpb.entries()
        )
        # The machine keeps running, then dies; everything recovers.
        for i in range(90, 120):
            addr = (i * 7) % 30
            payload = blk(i)
            system.store(addr, payload, asid=addr % num_asids)
            latest[addr] = payload
        system.crash()
        recovery = system.recover()
        assert recovery.ok, recovery.failure_summary()
        for addr, payload in latest.items():
            assert system.memory.recover_block(addr).plaintext == payload


class TestObserverPolicies:
    def test_blocking_policy_refuses_open_gap(self):
        system = SecurePersistentSystem(
            get_scheme("cobcm"), observer_policy=ObserverPolicy.BLOCKING
        )
        system.store(1, blk(1))
        # No crash: the SecPB still holds the entry -> gap open.
        with pytest.raises(RecoveryBlocked):
            system.recover()

    def test_warning_policy_flags_inconsistency(self):
        system = SecurePersistentSystem(
            get_scheme("cobcm"), observer_policy=ObserverPolicy.WARNING
        )
        system.store(1, blk(1))
        recovery = system.recover()
        assert not recovery.consistent_at_read
        assert not recovery.ok

    def test_after_crash_gap_is_closed(self):
        system = SecurePersistentSystem(
            get_scheme("cobcm"), observer_policy=ObserverPolicy.BLOCKING
        )
        system.store(1, blk(1))
        system.crash()
        assert system.recover().ok


class TestBBBPlaintextExposure:
    def test_bbb_recovers_but_leaks_plaintext(self):
        """BBB's crash consistency works — and the attacker's PM scan sees
        every value verbatim (the confidentiality gap SecPB closes)."""
        bbb = PlaintextPersistentSystem()
        secret = b"top-secret-data!".ljust(64, b"\x00")
        bbb.store(1, secret)
        bbb.crash()
        assert bbb.recover()[1] == secret
        assert bbb.attacker_scan()[1] == secret  # leaked!

    def test_secpb_attacker_scan_sees_only_ciphertext(self):
        system = SecurePersistentSystem(get_scheme("cobcm"))
        secret = b"top-secret-data!".ljust(64, b"\x00")
        system.store(1, secret)
        system.crash()
        stored = system.memory.nvm.read_block(1)
        assert stored != secret  # encrypted at rest
        assert system.memory.recover_block(1).plaintext == secret


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 255)),
            min_size=1,
            max_size=80,
        ),
        st.sampled_from(SPECTRUM_ORDER),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_store_sequence_recovers(self, stores, scheme_name):
        """Property: for any store sequence and any scheme, post-crash
        recovery yields the last-written value of every block."""
        system = SecurePersistentSystem(get_scheme(scheme_name))
        latest = {}
        for addr, value in stores:
            payload = bytes([value]) * 64
            system.store(addr, payload)
            latest[addr] = payload
        report = system.crash()
        assert report.invariants_ok
        recovery = system.recover()
        assert recovery.ok, recovery.failure_summary()
        for addr, payload in latest.items():
            assert system.memory.recover_block(addr).plaintext == payload
