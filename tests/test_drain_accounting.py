"""In-flight drain accounting must match the seed implementation.

The hot-path work replaced the simulator's list-filter bookkeeping of
in-flight drain completions with a ``heapq`` of completion times.  These
tests pin the externally visible accounting — backflow stalls/cycles,
forced drains, drain services and the peak-effective-occupancy gauge —
to the exact values the seed (list-based) implementation produced on
watermark-stress traces, captured before the optimization landed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import secpb as secpb_module
from repro.core.controller import TimingCalibration
from repro.core.schemes import get_scheme
from repro.core.simulator import run_scheme
from repro.sim.config import SystemConfig
from repro.workloads.trace import Trace

COUNTERS = (
    "secpb.forced_drains",
    "secpb.backflow_stalls",
    "secpb.backflow_cycles",
    "secpb.peak_effective_occupancy",
    "drain.services",
    "secpb.drains",
    "secpb.allocations",
)


def stress_trace(n: int = 1500, distinct: int = 4096) -> Trace:
    """All stores, each to a fresh block, zero compute gap.

    Every store allocates a new SecPB entry, so the watermark/backflow
    machinery saturates immediately and stays saturated.
    """
    addrs = np.arange(n, dtype=np.int64) % distinct + 1000
    return Trace(
        "stress", np.ones(n, dtype=bool), addrs, np.zeros(n, dtype=np.int32)
    )


def counters_of(result) -> dict:
    return {name: result.stats.get(name, 0.0) for name in COUNTERS}


class TestBackflowStallAccounting:
    """Slot release only at MC completion -> allocation stalls (Sec. VI-A)."""

    def test_cobcm_heavy_drains_on_tiny_buffer(self):
        # Seed-captured: COBCM pays every metadata step on the drain path,
        # so a 4-entry buffer backs the core up almost every allocation.
        result = run_scheme(
            stress_trace(),
            get_scheme("cobcm"),
            config=SystemConfig().with_secpb_entries(4),
        )
        assert counters_of(result) == {
            "secpb.forced_drains": 0.0,
            "secpb.backflow_stalls": 1496.0,
            "secpb.backflow_cycles": 22440.0,
            "secpb.peak_effective_occupancy": 4,
            "drain.services": 1498.0,
            "secpb.drains": 1498.0,
            "secpb.allocations": 1500.0,
        }
        assert result.cycles == 23940.0

    def test_nogap_single_entry_buffer(self):
        result = run_scheme(
            stress_trace(),
            get_scheme("nogap"),
            config=SystemConfig().with_secpb_entries(1),
        )
        assert counters_of(result) == {
            "secpb.forced_drains": 0.0,
            "secpb.backflow_stalls": 1499.0,
            "secpb.backflow_cycles": 2998.0,
            "secpb.peak_effective_occupancy": 1,
            "drain.services": 1500.0,
            "secpb.drains": 1500.0,
            "secpb.allocations": 1500.0,
        }
        assert result.cycles == 539633.0

    def test_bbb_insecure_fast_path_still_stalls(self):
        # The insecure BBB store fast path must keep the same backflow
        # accounting as the seed: the buffer geometry, not the metadata
        # work, causes these stalls.
        result = run_scheme(
            stress_trace(), None, config=SystemConfig().with_secpb_entries(4)
        )
        assert counters_of(result) == {
            "secpb.forced_drains": 0.0,
            "secpb.backflow_stalls": 1496.0,
            "secpb.backflow_cycles": 1496.0,
            "secpb.peak_effective_occupancy": 4,
            "drain.services": 1498.0,
            "secpb.drains": 1498.0,
            "secpb.allocations": 1500.0,
        }
        assert result.cycles == 2996.0


class TestInstantDrainAccounting:
    def test_zero_cycle_drains_never_stall(self):
        # drain_transfer_cycles=0: completions land exactly at `clock`, so
        # the heap prune (strictly-greater comparison) must retire them
        # immediately — an off-by-one (>= vs >) would deadlock or stall.
        result = run_scheme(
            stress_trace(),
            None,
            config=SystemConfig().with_secpb_entries(1),
            calibration=TimingCalibration(drain_transfer_cycles=0),
        )
        assert counters_of(result) == {
            "secpb.forced_drains": 0.0,
            "secpb.backflow_stalls": 0.0,
            "secpb.backflow_cycles": 0.0,
            "secpb.peak_effective_occupancy": 1,
            "drain.services": 1500.0,
            "secpb.drains": 1500.0,
            "secpb.allocations": 1500.0,
        }
        assert result.cycles == 1500.0


class TestForcedDrainProgressGuarantee:
    def test_underdraining_policy_forces_progress(self, monkeypatch):
        # The watermark policy never under-drains on its own (the
        # config-sweep search for a natural trigger comes up empty), so
        # exercise the guarantee directly: a policy that always returns
        # zero targets leaves the forced drain as the only way entries
        # ever leave the buffer.  Values captured from the seed loop.
        monkeypatch.setattr(secpb_module.SecPB, "drain_targets", lambda self: 0)
        result = run_scheme(
            stress_trace(n=200),
            None,
            config=SystemConfig().with_secpb_entries(4),
        )
        assert counters_of(result) == {
            "secpb.forced_drains": 196.0,
            "secpb.backflow_stalls": 196.0,
            "secpb.backflow_cycles": 392.0,
            "secpb.peak_effective_occupancy": 4,
            "drain.services": 196.0,
            "secpb.drains": 196.0,
            "secpb.allocations": 200.0,
        }
        assert result.cycles == 592.0

    def test_peak_effective_occupancy_never_exceeds_capacity(self):
        for entries in (1, 2, 4, 8):
            result = run_scheme(
                stress_trace(n=400),
                get_scheme("cobcm"),
                config=SystemConfig().with_secpb_entries(entries),
            )
            peak = result.stats["secpb.peak_effective_occupancy"]
            assert 0 < peak <= entries


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
