#!/usr/bin/env python3
"""Persistent data structures: log, hash map and queue surviving a crash.

Three crash-consistent structures from :mod:`repro.apps` share one secure
persistent address space.  A workload exercises all three, power fails at
an arbitrary point, and recovery rebuilds exactly the acknowledged state —
decrypted and integrity-verified block by block.

Run:  python examples/persistent_structures.py
"""

from __future__ import annotations

import random

from repro import SecurePersistentSystem, get_scheme
from repro.apps import PersistentHashMap, PersistentLog, PersistentQueue


def main() -> None:
    rng = random.Random(4242)
    system = SecurePersistentSystem(get_scheme("cobcm"))

    log = PersistentLog(system=system, base_block=0, capacity_blocks=256)
    index = PersistentHashMap(buckets=128, system=system, base_block=512)
    inbox = PersistentQueue(slots=32, system=system, base_block=1024)

    print("running a mixed workload over log + hash map + queue...")
    appended = []
    dequeued = 0
    for i in range(300):
        op = rng.random()
        if op < 0.5:
            record = f"event-{i:04d}".encode()
            log.append(record)
            appended.append(record)
            index.put(f"evt{i % 60}".encode(), str(i).encode())
        elif op < 0.8:
            try:
                inbox.enqueue(f"msg-{i}".encode())
            except ValueError:
                inbox.dequeue()
                dequeued += 1
        elif len(inbox):
            inbox.dequeue()
            dequeued += 1

    print(
        f"  log: {len(log)} records, map: {len(index)} keys, "
        f"queue: {len(inbox)} in flight"
    )

    report = system.crash()
    print(
        f"power failure! battery drained {report.entries_drained} SecPB "
        f"entries, invariants ok: {report.invariants_ok}"
    )

    recovered_log = PersistentLog.recover(system, base_block=0)
    recovered_map = PersistentHashMap.recover(system, buckets=128, base_block=512)
    head, tail, recovered_queue = PersistentQueue.recover(
        system, slots=32, base_block=1024
    )

    assert recovered_log == appended
    assert len(recovered_map) == len(index)
    assert len(recovered_queue) == len(inbox)
    print("recovery verified:")
    print(f"  log     -> {len(recovered_log)} records intact")
    print(f"  map     -> {len(recovered_map)} keys intact")
    print(f"  queue   -> head={head} tail={tail}, {len(recovered_queue)} items")
    print(f"  sample log record: {recovered_log[0]!r}")


if __name__ == "__main__":
    main()
