#!/usr/bin/env python3
"""The SecPB design space: performance vs battery capacity.

Reproduces the paper's central trade-off at example scale: each of the six
schemes is simulated over a few representative workloads (performance
overhead vs insecure BBB) and paired with its worst-case battery estimate
(Table V).  The output is the spectrum the paper's conclusion describes —
COBCM near-free but battery-hungry, NoGap battery-cheap but slow, CM the
budget-conscious middle.

Run:  python examples/design_space_sweep.py  [num_ops]
"""

from __future__ import annotations

import sys

from repro import SecurePersistencySimulator, SystemConfig, build_trace, get_scheme
from repro.analysis.report import format_table
from repro.core.schemes import SPECTRUM_ORDER
from repro.energy.battery import estimate_scheme
from repro.sim.stats import geometric_mean

BENCHMARKS = ["gamess", "povray", "hmmer", "mcf", "leslie3d", "gcc"]
WARMUP = 0.3


def main() -> None:
    num_ops = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    config = SystemConfig()
    print(
        f"sweeping {len(SPECTRUM_ORDER)} schemes x {len(BENCHMARKS)} "
        f"workloads ({num_ops} refs each, 32-entry SecPB)...\n"
    )

    traces = {name: build_trace(name, num_ops) for name in BENCHMARKS}
    bbb = SecurePersistencySimulator(config=config, scheme=None)
    baselines = {name: bbb.run(trace, WARMUP) for name, trace in traces.items()}

    rows = []
    for scheme_name in SPECTRUM_ORDER:
        simulator = SecurePersistencySimulator(
            config=config, scheme=get_scheme(scheme_name)
        )
        slowdowns = []
        for bench, trace in traces.items():
            result = simulator.run(trace, WARMUP)
            slowdowns.append(result.slowdown_vs(baselines[bench]))
        overhead_pct = (geometric_mean(slowdowns) - 1.0) * 100.0
        battery = estimate_scheme(get_scheme(scheme_name), config)
        rows.append(
            [
                scheme_name,
                f"{overhead_pct:8.1f}%",
                f"{battery.supercap_mm3:8.2f}",
                f"{battery.li_thin_mm3:8.3f}",
                f"{battery.supercap_core_pct:6.1f}%",
            ]
        )

    print(
        format_table(
            ["scheme", "overhead", "SuperCap mm^3", "Li-Thin mm^3", "%core"],
            rows,
            title="performance / battery trade-off (lazier schemes first)",
        )
    )
    print(
        "\nreading the spectrum: COBCM is nearly free at runtime but needs"
        "\nthe largest battery; NoGap needs almost no battery but doubles"
        "\nexecution time; CM is the paper's budget-conscious compromise."
    )


if __name__ == "__main__":
    main()
