#!/usr/bin/env python3
"""BMT height reduction (Bonsai Merkle Forests) on top of SecPB.

Example-scale version of the paper's Fig. 9: the CM scheme pays a full
8-level BMT root update per SecPB entry; pairing it with DBMF (effective
height 2) or SBMF (height 5) cuts the eager latency, and even the SBMF
variant beats the strict-persistency state of the art with DBMF.

Run:  python examples/bmf_height_study.py  [num_ops]
"""

from __future__ import annotations

import sys

from repro import SecurePersistencySimulator, SystemConfig, build_trace, get_scheme
from repro.analysis.report import format_table
from repro.baselines.strict import StrictPersistencySimulator
from repro.security.bmf import ForestTimingModel
from repro.sim.stats import geometric_mean

BENCHMARKS = ["gamess", "povray", "hmmer", "h264ref"]
WARMUP = 0.3


def forest(cut: int, config: SystemConfig) -> ForestTimingModel:
    return ForestTimingModel(
        full_height=config.security.bmt_levels, cut_height=cut
    )


def main() -> None:
    num_ops = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000
    config = SystemConfig()
    traces = {name: build_trace(name, num_ops) for name in BENCHMARKS}
    bbb = SecurePersistencySimulator(config=config, scheme=None)
    baselines = {n: bbb.run(t, WARMUP) for n, t in traces.items()}

    def overhead(run_fn) -> float:
        slowdowns = [
            run_fn(trace).slowdown_vs(baselines[name])
            for name, trace in traces.items()
        ]
        return (geometric_mean(slowdowns) - 1.0) * 100.0

    cm = get_scheme("cm")

    def cm_runner(cut):
        model = forest(cut, config) if cut else None
        sim = SecurePersistencySimulator(
            config=config,
            scheme=cm,
            bmt_levels_fn=model.levels if model else None,
        )
        return lambda trace: sim.run(trace, WARMUP)

    def sp_runner(cut):
        model = forest(cut, config) if cut else None
        sim = StrictPersistencySimulator(
            config=config, bmt_levels_fn=model.levels if model else None
        )
        return lambda trace: sim.run(trace, WARMUP)

    rows = [
        ["cm (8 levels)", f"{overhead(cm_runner(None)):8.1f}%"],
        ["cm_dbmf (2 levels)", f"{overhead(cm_runner(2)):8.1f}%"],
        ["cm_sbmf (5 levels)", f"{overhead(cm_runner(5)):8.1f}%"],
        ["sp_dbmf (2 levels)", f"{overhead(sp_runner(2)):8.1f}%"],
        ["sp_sbmf (5 levels)", f"{overhead(sp_runner(5)):8.1f}%"],
    ]
    print(
        format_table(
            ["configuration", "overhead vs BBB"],
            rows,
            title=f"BMT height study over {BENCHMARKS} ({num_ops} refs each)",
        )
    )
    print(
        "\nthe paper's takeaway: height reduction pairs well with SecPB —"
        "\ncm_dbmf/cm_sbmf beat even sp_dbmf, so a battery-constrained"
        "\ndesign can pick CM + BMF instead of COBCM."
    )


if __name__ == "__main__":
    main()
