#!/usr/bin/env python3
"""Capture a real application's trace and replay it under every scheme.

The workflow a downstream user wants: run *your* persistent-memory
application against :class:`~repro.workloads.capture.TracedPersistentHeap`,
capture its block-level access trace, then replay that trace through the
timing simulator to see what each SecPB scheme would cost — while the
mirrored functional system proves the data survives a crash.

The application here is a small persistent B-tree-ish index plus an
append-only log (a common PM idiom: update the log, then the index).

Run:  python examples/app_trace_replay.py
"""

from __future__ import annotations

import random

from repro import SecurePersistentSystem, get_scheme
from repro.analysis.report import format_table
from repro.baselines.bbb import run_bbb
from repro.core.schemes import SPECTRUM_ORDER
from repro.core.simulator import run_scheme
from repro.workloads.capture import TracedPersistentHeap


def run_application(heap: TracedPersistentHeap) -> None:
    """A log + index workload over the persistent heap."""
    rng = random.Random(99)
    log = heap.allocate("log", 64 * 1024)  # append-only records
    index = heap.allocate("index", 16 * 1024)  # hot lookup structure

    log_tail = 0
    for i in range(800):
        # Append a 48-byte record to the log (sequential writes).
        record = f"txn-{i:06d}".encode().ljust(48, b".")
        heap.write(log, log_tail % (64 * 1024 - 48), record)
        log_tail += 48
        # Update 1-2 hot index slots (random small writes).
        for _ in range(rng.randint(1, 2)):
            slot = rng.randrange(0, 16 * 1024 - 8, 8)
            heap.write(index, slot, log_tail.to_bytes(8, "little"))
        # Occasionally read an index slot back (lookup).
        if i % 5 == 0:
            heap.read(index, rng.randrange(0, 16 * 1024 - 8, 8), 8)


def main() -> None:
    # 1. Run the app once, capturing the trace and mirroring writes into
    #    a functional SecPB system.
    mirror = SecurePersistentSystem(get_scheme("cobcm"))
    heap = TracedPersistentHeap(compute_gap=6, mirror_system=mirror)
    run_application(heap)
    trace = heap.finish("log+index-app")
    print(
        f"captured {len(trace)} block references "
        f"({trace.num_stores} stores, {trace.instructions} instructions)"
    )

    # 2. Prove the captured run is crash-consistent.
    mirror.crash()
    recovery = mirror.recover()
    print(f"crash recovery of the mirrored run: ok={recovery.ok}\n")

    # 3. Replay the trace under every scheme for timing.
    baseline = run_bbb(trace)
    rows = []
    for name in SPECTRUM_ORDER:
        result = run_scheme(trace, get_scheme(name))
        rows.append(
            [
                name,
                f"{result.overhead_pct_vs(baseline):7.1f}%",
                f"{result.stats['ppti']:5.1f}",
                f"{result.stats['nwpe']:5.1f}",
            ]
        )
    print(
        format_table(
            ["scheme", "overhead", "PPTI", "NWPE"],
            rows,
            title="this application's cost under each SecPB scheme",
        )
    )
    print(
        "\nuse this to size the battery: if the overhead you can afford is"
        "\nknown, `python -m repro advisor <mm^3>` picks the scheme."
    )


if __name__ == "__main__":
    main()
