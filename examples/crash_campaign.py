#!/usr/bin/env python3
"""Failure-injection campaign: crash everywhere, recover everywhere.

The strongest statement a crash-consistent system can make is statistical:
inject power failures at *random* points of random workloads, across every
scheme, and verify that recovery succeeds and yields exactly the
acknowledged state every single time — while the naive gapped hierarchy
fails under the same campaign.

Run:  python examples/crash_campaign.py [trials]
"""

from __future__ import annotations

import random
import sys

from repro import GappedPersistentSystem, SecurePersistentSystem, get_scheme
from repro.core.schemes import SPECTRUM_ORDER


def run_one_trial(rng: random.Random, scheme_name: str) -> bool:
    """One random workload + crash point; True when recovery is perfect."""
    system = SecurePersistentSystem(get_scheme(scheme_name))
    expected = {}
    crash_after = rng.randrange(5, 160)
    for i in range(crash_after):
        block = rng.randrange(60)
        payload = bytes([rng.randrange(256)]) * 64
        system.store(block, payload)
        expected[block] = payload
    report = system.crash()
    if not report.invariants_ok:
        return False
    recovery = system.recover()
    if not recovery.ok:
        return False
    return all(
        system.memory.recover_block(block).plaintext == payload
        for block, payload in expected.items()
    )


def run_gapped_trial(rng: random.Random) -> bool:
    """Same campaign against the recoverability gap; True when it fails."""
    gapped = GappedPersistentSystem()
    for i in range(rng.randrange(5, 60)):
        gapped.store(rng.randrange(30), bytes([i % 256]) * 64)
    gapped.crash()
    return not gapped.recover().ok


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    rng = random.Random(1302)

    print(f"crash campaign: {trials} random crashes per scheme\n")
    for scheme_name in SPECTRUM_ORDER:
        survived = sum(run_one_trial(rng, scheme_name) for _ in range(trials))
        marker = "OK " if survived == trials else "FAIL"
        print(f"  {marker} {scheme_name:<7} {survived}/{trials} perfect recoveries")
        assert survived == trials, f"{scheme_name} lost data!"

    gap_failures = sum(run_gapped_trial(rng) for _ in range(trials))
    print(
        f"\n  naive gapped hierarchy failed recovery in "
        f"{gap_failures}/{trials} trials (expected: all)"
    )
    assert gap_failures == trials
    print("\ncampaign complete: SecPB never lost data; the gap always did.")


if __name__ == "__main__":
    main()
