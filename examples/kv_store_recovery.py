#!/usr/bin/env python3
"""A crash-consistent key-value store on secure persistent memory.

The kind of application the paper's introduction motivates: a persistent
KV store whose puts become durable the instant they reach the SecPB — no
cache-line flushes, no fences — while encryption and integrity protection
ride along invisibly.

The store maps fixed-size string keys to values, one 64-byte block per
record, with a block-0 index.  We run a workload, yank the power at a
random point, and verify that exactly the acknowledged puts are
recoverable and verified.

Run:  python examples/kv_store_recovery.py
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro import SecurePersistentSystem, get_scheme

KEY_BYTES = 16
VALUE_BYTES = 47  # + 1-byte length = 64 per record


class SecureKVStore:
    """A tiny persistent KV store over :class:`SecurePersistentSystem`.

    Records live at block addresses derived from an in-memory directory
    (rebuilt on recovery from the index block in a real design; kept
    simple here).  A put is *acknowledged* once the store call returns —
    i.e. once the record entered the battery-backed SecPB.
    """

    def __init__(self, scheme_name: str = "cobcm"):
        self.system = SecurePersistentSystem(get_scheme(scheme_name))
        self.directory: Dict[str, int] = {}
        self._next_block = 1

    def put(self, key: str, value: str) -> None:
        """Durably store one record (acknowledged on return)."""
        if len(key.encode()) > KEY_BYTES:
            raise ValueError(f"key too long (max {KEY_BYTES} bytes)")
        if len(value.encode()) > VALUE_BYTES:
            raise ValueError(f"value too long (max {VALUE_BYTES} bytes)")
        block = self.directory.get(key)
        if block is None:
            block = self._next_block
            self._next_block += 1
            self.directory[key] = block
        self.system.store(block, self._encode(key, value))

    def crash(self):
        """Power loss; returns the battery's crash report."""
        return self.system.crash()

    def recover(self) -> Dict[str, str]:
        """Post-crash: verify and decrypt every record.

        Returns:
            The recovered key -> value mapping.

        Raises:
            RuntimeError: if any record fails integrity verification.
        """
        report = self.system.recover()
        if not report.ok:
            raise RuntimeError(
                "integrity verification failed:\n" + report.failure_summary()
            )
        recovered = {}
        for key, block in self.directory.items():
            record = self.system.memory.recover_block(block)
            decoded = self._decode(record.plaintext)
            if decoded is not None:
                recovered[key] = decoded[1]
        return recovered

    @staticmethod
    def _encode(key: str, value: str) -> bytes:
        raw_value = value.encode()
        payload = (
            key.encode().ljust(KEY_BYTES, b"\x00")
            + bytes([len(raw_value)])
            + raw_value
        )
        return payload.ljust(64, b"\x00")

    @staticmethod
    def _decode(block: Optional[bytes]):
        if block is None:
            return None
        key = block[:KEY_BYTES].rstrip(b"\x00").decode()
        length = block[KEY_BYTES]
        value = block[KEY_BYTES + 1 : KEY_BYTES + 1 + length].decode()
        return key, value


def main() -> None:
    rng = random.Random(2023)
    store = SecureKVStore("cobcm")

    print("running KV workload (1000 puts over 200 keys)...")
    acknowledged: Dict[str, str] = {}
    crash_at = rng.randrange(600, 900)
    for i in range(1000):
        key = f"user:{rng.randrange(200):03d}"
        value = f"session-{i}"
        store.put(key, value)
        acknowledged[key] = value
        if i == crash_at:
            print(f"power failure after put #{i}!")
            break

    report = store.crash()
    print(
        f"battery drained {report.entries_drained} SecPB entries "
        f"({report.late_steps_completed} late metadata steps)"
    )

    recovered = store.recover()
    assert recovered == acknowledged, "acknowledged puts must survive"
    print(
        f"recovered {len(recovered)} records; every acknowledged put "
        f"verified and decrypted correctly."
    )
    sample_key = sorted(recovered)[0]
    print(f"sample: {sample_key!r} -> {recovered[sample_key]!r}")


if __name__ == "__main__":
    main()
