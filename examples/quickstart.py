#!/usr/bin/env python3
"""Quickstart: secure persistent memory that survives a crash.

Walks the paper's core story in four acts:

1. a SecPB-protected system persists stores instantly and recovers them
   after a power loss, with encryption and integrity verification intact;
2. the naive persistent hierarchy (PoP at the core, SPoP at the MC — the
   "recoverability gap" of Fig. 1b) loses its security metadata and fails
   recovery;
3. an insecure BBB system recovers fine — but leaks every value to a
   physical attacker scanning the NVM;
4. attacks on the SecPB system's NVM (tamper / splice / replay) are
   detected by the MAC and the Bonsai Merkle Tree.

Run:  python examples/quickstart.py
"""

from repro import GappedPersistentSystem, SecurePersistentSystem, get_scheme
from repro.baselines.bbb import PlaintextPersistentSystem


def pad(text: str) -> bytes:
    """Pack a string into one 64-byte memory block."""
    return text.encode().ljust(64, b"\x00")


def act_1_secpb_recovers() -> None:
    print("=== 1. SecPB: crash -> battery drain + sec-sync -> recovery ===")
    system = SecurePersistentSystem(get_scheme("cobcm"))
    for i, word in enumerate(["alpha", "bravo", "charlie", "delta"]):
        system.store(i, pad(word))
    print(f"  stored 4 blocks; SecPB holds {system.secpb.occupancy} entries")

    report = system.crash()
    print(
        f"  CRASH: battery drained {report.entries_drained} entries, "
        f"completed {report.late_steps_completed} late metadata steps"
    )
    print(f"  PLP invariants hold: {report.invariants_ok}")

    recovery = system.recover()
    print(f"  recovery ok: {recovery.ok} ({recovery.blocks_checked} blocks)")
    value = system.memory.recover_block(2).plaintext
    print(f"  block 2 recovered as: {value.rstrip(chr(0).encode())!r}\n")


def act_2_recoverability_gap() -> None:
    print("=== 2. Naive persistent hierarchy: the recoverability gap ===")
    gapped = GappedPersistentSystem()
    for i in range(4):
        gapped.store(i, pad(f"value-{i}"))
    print("  data persisted to PM; metadata still in volatile caches...")
    gapped.crash()
    recovery = gapped.recover()
    print(f"  recovery ok: {recovery.ok}")
    print(f"  failed blocks: {len(recovery.failures)} of 4")
    print(f"  first failure: {recovery.failure_summary().splitlines()[0]}\n")


def act_3_bbb_leaks() -> None:
    print("=== 3. Insecure BBB: recoverable, but plaintext at rest ===")
    bbb = PlaintextPersistentSystem()
    bbb.store(0, pad("launch-code-0000"))
    bbb.crash()
    leaked = bbb.attacker_scan()[0]
    print(f"  attacker's NVM scan reads: {leaked.rstrip(chr(0).encode())!r}")

    secure = SecurePersistentSystem(get_scheme("cobcm"))
    secure.store(0, pad("launch-code-0000"))
    secure.crash()
    at_rest = secure.memory.nvm.read_block(0)
    print(f"  SecPB system's NVM holds ciphertext: {at_rest[:16].hex()}...\n")


def act_4_attacks_detected() -> None:
    print("=== 4. Tamper / splice / replay detection ===")
    system = SecurePersistentSystem(get_scheme("cobcm"))
    system.store(0, pad("genuine-0"))
    system.store(1, pad("genuine-1"))
    system.crash()

    system.memory.tamper_data(0, b"\xff" * 64)
    print(f"  tampered block 0 -> {system.memory.recover_block(0).status.value}")

    system.memory.splice_data(from_addr=0, to_addr=1)
    print(f"  spliced 0 into 1 -> {system.memory.recover_block(1).status.value}")


def main() -> None:
    act_1_secpb_recovers()
    act_2_recoverability_gap()
    act_3_bbb_leaks()
    act_4_attacks_detected()
    print("\nquickstart complete.")


if __name__ == "__main__":
    main()
