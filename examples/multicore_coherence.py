#!/usr/bin/env python3
"""Multi-core SecPB coherence: migration instead of replication.

Demonstrates Sec. IV-C of the paper: each core owns a private SecPB, and
a block (plus its eagerly computed metadata) must live in at most one of
them.  A remote *write* migrates the entry — carrying the value-independent
metadata (counter / OTP / BMT acknowledgement) so it is never recomputed —
while a remote *read* flushes the entry to PM and hands the data over.

Run:  python examples/multicore_coherence.py
"""

from __future__ import annotations

from repro.core.coherence import SecPBDirectory
from repro.core.schemes import MetadataStep, get_scheme
from repro.core.secpb import SecPB
from repro.sim.config import SecPBConfig


def pad(text: str) -> bytes:
    return text.encode().ljust(64, b"\x00")


def main() -> None:
    scheme = get_scheme("nogap")  # eager: metadata travels with entries
    cores = 4
    secpbs = [SecPB(SecPBConfig(entries=8), scheme) for _ in range(cores)]
    directory = SecPBDirectory(secpbs, scheme)

    print(f"{cores} cores, 8-entry SecPBs, scheme = {scheme.name}\n")

    # Core 0 produces a shared work item and its metadata eagerly.
    entry = directory.local_write(0, 0x100, pad("work-item-1"))
    for step in MetadataStep:
        entry.mark(step)
    print(f"core 0 wrote block 0x100 (owner: core {directory.owner_of(0x100)})")

    # Core 2 takes over the item: remote write -> migration.
    report = directory.migrate(0x100, to_core=2)
    print(
        f"core 2 writes 0x100: entry migrated {report.from_core} -> "
        f"{report.to_core}"
    )
    migrated = directory.secpbs[2].lookup(0x100)
    carried = [
        step.value
        for step in (MetadataStep.COUNTER, MetadataStep.OTP, MetadataStep.BMT_ROOT)
        if migrated.is_marked(step)
    ]
    redo = [
        step.value
        for step in (MetadataStep.CIPHERTEXT, MetadataStep.MAC)
        if not migrated.is_marked(step)
    ]
    print(f"  value-independent metadata carried over: {carried}")
    print(f"  value-dependent metadata to regenerate:  {redo}")

    # Core 3 only reads: the owner's entry is flushed and data forwarded.
    directory.local_write(2, 0x100, pad("work-item-1b"))
    data = directory.remote_read(3, 0x100)
    print(
        f"\ncore 3 reads 0x100: forwarded "
        f"{data.rstrip(chr(0).encode())!r}, entry flushed to PM "
        f"(owner now: {directory.owner_of(0x100)})"
    )

    # A burst of writers, then the no-replication audit.
    import random

    rng = random.Random(7)
    for _ in range(200):
        directory.local_write(rng.randrange(cores), rng.randrange(32), pad("x"))
    directory.check_no_replication()
    migrations = int(directory.stats.get("coherence.migrations"))
    print(
        f"\nstress: 200 scattered writes -> {migrations} migrations, "
        f"no-replication audit passed."
    )


if __name__ == "__main__":
    main()
