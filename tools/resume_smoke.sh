#!/bin/sh
# resume-smoke: the CI gate for the crash-safe harness (ISSUE 5).
#
# Runs a small fault campaign to completion for a baseline report, runs
# the same campaign again with a --deadline tight enough to force an
# early checkpoint (exit 75, EX_TEMPFAIL), resumes from the journal,
# and verifies the resumed report is byte-identical to the baseline.
# Also asserts the saved artifacts carry verifiable SHA-256 manifests.
#
# Usage: tools/resume_smoke.sh  (from the repo root; needs PYTHONPATH=src)
set -eu

PYTHON="${PYTHON:-python}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

ARGS="--crash-points 6 --num-stores 400 --jobs 2"

echo "resume-smoke: baseline campaign"
$PYTHON -m repro faultcampaign $ARGS --save "$WORK/baseline.json" \
    > "$WORK/baseline.txt"

echo "resume-smoke: interrupted campaign (--deadline 0.2)"
rc=0
$PYTHON -m repro faultcampaign $ARGS --journal "$WORK/campaign.jsonl" \
    --deadline 0.2 > /dev/null 2> "$WORK/interrupt.err" || rc=$?
if [ "$rc" -eq 75 ]; then
    echo "resume-smoke: checkpointed at deadline (exit 75)"
    grep -q -- "--resume" "$WORK/interrupt.err"
elif [ "$rc" -eq 0 ]; then
    # A very fast machine can finish inside the budget; the resume path
    # below still exercises a fully-journaled resume.
    echo "resume-smoke: campaign finished inside the deadline"
else
    echo "resume-smoke: unexpected exit $rc" >&2
    cat "$WORK/interrupt.err" >&2
    exit 1
fi

echo "resume-smoke: resuming from journal"
$PYTHON -m repro faultcampaign $ARGS --resume "$WORK/campaign.jsonl" \
    --save "$WORK/resumed.json" > "$WORK/resumed.txt"

echo "resume-smoke: verifying byte-identity and manifests"
cmp "$WORK/baseline.json" "$WORK/resumed.json"
cmp "$WORK/baseline.txt" "$WORK/resumed.txt"
$PYTHON - "$WORK" <<'EOF'
import sys
from pathlib import Path
from repro.durability import ArtifactStatus, verify_artifact

work = Path(sys.argv[1])
for name in ("baseline.json", "resumed.json"):
    status = verify_artifact(work / name)
    assert status is ArtifactStatus.OK, f"{name}: {status}"
EOF

echo "resume-smoke: OK (resumed report byte-identical to baseline)"
