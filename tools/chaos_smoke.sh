#!/bin/sh
# chaos-smoke: the CI gate for the environment-fault plane (ISSUE 9).
#
# Runs the systematic crash-consistency checker (every torn journal
# prefix, every partially-applied artifact write, ENOSPC mid-campaign,
# a worker SIGKILL storm) and a short seeded randomized soak, asserting
# zero invariant violations and zero /dev/shm trace-segment residue.
# Both modes are fully deterministic: the soak derives every fault plan
# from --seed, so a CI failure here replays locally with the same seed.
#
# Usage: tools/chaos_smoke.sh  (from the repo root; needs PYTHONPATH=src)
set -eu

PYTHON="${PYTHON:-python}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "chaos-smoke: systematic crash-consistency sweep"
$PYTHON -m repro chaos --systematic --jobs 2 --workdir "$WORK/systematic" \
    --save "$WORK/systematic.json"

echo "chaos-smoke: seeded randomized soak"
$PYTHON -m repro chaos --seed 2023 --ops 3 --minutes 0.2 --jobs 2 \
    --workdir "$WORK/soak" --save "$WORK/soak.json"

echo "chaos-smoke: verifying reports and /dev/shm residue"
$PYTHON - "$WORK" <<'EOF'
import glob
import json
import sys
from pathlib import Path

work = Path(sys.argv[1])
for name in ("systematic.json", "soak.json"):
    report = json.loads((work / name).read_text())
    assert report["violations"] == [], f"{name}: {report['violations']}"
    assert report["states"] > 0, f"{name}: checked nothing"
    assert report["shm_residue"] == [], f"{name}: {report['shm_residue']}"

from repro.runtime.shm import segment_prefix
residue = glob.glob(f"/dev/shm/{segment_prefix()}*")
assert not residue, f"leaked trace segments: {residue}"
EOF

echo "chaos-smoke: OK (all crash-consistency invariants held)"
