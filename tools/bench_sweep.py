#!/usr/bin/env python
"""Before/after throughput benchmark for the parallel sweep layer.

Measures jobs-per-second of the scheme-sweep workload that dominates the
paper harness — one :func:`repro.analysis.runner.run_jobs` call per
scheme over a benchmark × seed grid — in two configurations:

* **before**: the pre-plane execution model (``SECPB_EXEC_PLANE=0``):
  an ephemeral worker pool is created and torn down per ``run_jobs``
  call, every job is dispatched as its own pickle round-trip
  (``chunk=1``), and each freshly-forked worker rebuilds every trace it
  touches from scratch;
* **after**: the shared-memory execution plane (the default): one warm
  persistent pool serves all six sweeps, the parent publishes each
  distinct trace once as a zero-copy shared-memory segment that workers
  attach read-only, and dispatch is batched adaptively.

Each mode runs in a fresh child interpreter (the env gates are read at
module scope) and is repeated ``--repeat`` times, keeping the best run.
The child also emits a SHA-256 digest over every simulation result;
the parent asserts all digests — across modes and repeats — are
identical, so the speedup is measured on provably byte-identical
output.  Writes ``BENCH_sweep.json`` at the repo root.

Usage::

    PYTHONPATH=src python tools/bench_sweep.py --jobs 4
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

SCHEMES = ("bcm", "cm", "cobcm", "m", "nogap", "obcm")
BENCHMARKS = ("gamess", "mcf", "lbm", "omnetpp")
DEFAULT_SEEDS = 3
DEFAULT_NUM_OPS = 2000
DEFAULT_JOBS = 4
DEFAULT_REPEAT = 3


def build_jobs(scheme, benchmarks, seeds, num_ops):
    """The per-scheme job list: one SimJob per (benchmark, seed)."""
    from repro.analysis.runner import SimJob, SimSpec

    spec = SimSpec(scheme=scheme)
    return [
        SimJob(
            key=(scheme, benchmark, seed),
            benchmark=benchmark,
            num_ops=num_ops,
            seed=seed,
            warmup_frac=0.0,
            spec=spec,
        )
        for benchmark in benchmarks
        for seed in range(1, seeds + 1)
    ]


def results_digest(results):
    """SHA-256 over a canonical rendering of every simulation result."""
    digest = hashlib.sha256()
    for key in sorted(results):
        result = results[key]
        record = [
            list(key),
            result.scheme,
            result.benchmark,
            result.cycles,
            result.instructions,
            sorted(result.stats.items()),
        ]
        digest.update(json.dumps(record, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


def run_sweep(workers, num_ops, seeds, chunk):
    """One full 6-scheme sweep; returns (seconds, digest, job_count)."""
    from repro.analysis.runner import run_jobs

    merged = {}
    total = 0
    start = time.perf_counter()
    for scheme in SCHEMES:
        jobs = build_jobs(scheme, BENCHMARKS, seeds, num_ops)
        total += len(jobs)
        merged.update(run_jobs(jobs, workers=workers, chunk=chunk))
    seconds = time.perf_counter() - start
    return seconds, results_digest(merged), total


def child_main(args):
    seconds, digest, total = run_sweep(
        args.jobs, args.num_ops, args.seeds, args.chunk
    )
    json.dump(
        {
            "seconds": round(seconds, 4),
            "jps": round(total / seconds, 2),
            "jobs": total,
            "digest": digest,
            # Leak tests scan /dev/shm for this (exited) pid's segments.
            "pid": os.getpid(),
        },
        sys.stdout,
    )
    sys.stdout.write("\n")
    return 0


def run_child(mode, args):
    """One timed child run; returns its parsed JSON report."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable,
        os.path.abspath(__file__),
        "--child",
        "--jobs", str(args.jobs),
        "--num-ops", str(args.num_ops),
        "--seeds", str(args.seeds),
    ]
    if mode == "before":
        env["SECPB_EXEC_PLANE"] = "0"
        command += ["--chunk", "1"]
    else:
        env["SECPB_EXEC_PLANE"] = "1"
    output = subprocess.run(
        command, env=env, check=True, capture_output=True, text=True
    ).stdout
    return json.loads(output.splitlines()[-1])


def measure(mode, args):
    """Best-of-N child runs for one mode; all digests must agree."""
    best = None
    digests = set()
    for _ in range(args.repeat):
        report = run_child(mode, args)
        digests.add(report["digest"])
        if best is None or report["jps"] > best["jps"]:
            best = report
    if len(digests) != 1:
        raise SystemExit(f"{mode}: non-deterministic results {digests}")
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--num-ops", type=int, default=DEFAULT_NUM_OPS)
    parser.add_argument("--seeds", type=int, default=DEFAULT_SEEDS)
    parser.add_argument("--repeat", type=int, default=DEFAULT_REPEAT)
    parser.add_argument("--chunk", type=int, default=None)
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_sweep.json")
    )
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return child_main(args)

    before = measure("before", args)
    after = measure("after", args)
    if before["digest"] != after["digest"]:
        raise SystemExit(
            "before/after result digests differ: "
            f"{before['digest']} vs {after['digest']}"
        )
    report = {
        "workload": {
            "schemes": list(SCHEMES),
            "benchmarks": list(BENCHMARKS),
            "seeds": args.seeds,
            "num_ops": args.num_ops,
            "workers": args.jobs,
            "jobs": before["jobs"],
        },
        "before": {"jps": before["jps"], "seconds": before["seconds"]},
        "after": {"jps": after["jps"], "seconds": after["seconds"]},
        "speedup": round(after["jps"] / before["jps"], 2),
        "digest": after["digest"],
        "python": ".".join(str(part) for part in sys.version_info[:3]),
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
