#!/usr/bin/env python
"""Regenerate the golden-output files under tests/data/.

Usage::

    PYTHONPATH=src python tools/regen_golden.py

Only legitimate when a PR *intentionally* changes simulator semantics
(new timing model, new counters).  Performance work must never need
this — the whole point of the goldens is that optimized code produces
byte-identical artifacts (see tests/test_golden_output.py).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from tests import golden  # noqa: E402


def main() -> int:
    golden.regenerate()
    for name in golden.GOLDEN_BUILDERS:
        print(f"wrote {golden.GOLDEN_DIR / name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
