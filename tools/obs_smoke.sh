#!/bin/sh
# obs-smoke: the CI gate for the observability layer (ISSUE 6).
#
# Runs one instrumented experiment and one `repro trace` export, then
# verifies from a separate process that (1) the Chrome trace validates
# against the checked-in schema, (2) the Prometheus text parses and
# carries the expected metric families, (3) an instrumented run's table
# output is byte-identical to an uninstrumented one, and (4) artifacts
# carry verifiable SHA-256 manifests.  The tracing-off throughput gate
# is the quick hot-loop benchmark (SECPB_HOTLOOP_OPS), which runs with
# no tracer bound.
#
# Usage: tools/obs_smoke.sh  (from the repo root; needs PYTHONPATH=src)
set -eu

PYTHON="${PYTHON:-python}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

ARGS="table4 --num-ops 2000 --jobs 2"

echo "obs-smoke: uninstrumented baseline"
$PYTHON -m repro experiment $ARGS > "$WORK/plain.txt"

echo "obs-smoke: instrumented experiment (--metrics + --trace)"
$PYTHON -m repro experiment $ARGS --metrics "$WORK/exp.prom" \
    --trace "$WORK/exp-trace.json" > "$WORK/instrumented.txt" 2> /dev/null

echo "obs-smoke: instrumentation must not change results"
cmp "$WORK/plain.txt" "$WORK/instrumented.txt"

echo "obs-smoke: simulator trace export (repro trace)"
$PYTHON -m repro trace --benchmark gamess --scheme m --num-ops 4000 \
    --out "$WORK/sim-trace.json" --metrics "$WORK/sim.prom" \
    > /dev/null 2> /dev/null

echo "obs-smoke: validating trace schema, Prometheus text, manifests"
$PYTHON - "$WORK" <<'EOF'
import json
import sys
from pathlib import Path

from repro.durability import ArtifactStatus, verify_artifact
from repro.obs import load_trace_schema, validate

work = Path(sys.argv[1])
schema = load_trace_schema()

for name in ("exp-trace.json", "sim-trace.json"):
    payload = json.loads((work / name).read_text())
    errors = validate(payload, schema)
    assert errors == [], f"{name}: {errors[:3]}"
    assert verify_artifact(work / name) is ArtifactStatus.OK, name

# The runner timeline has one job slice per simulation in the sweep.
runner = json.loads((work / "exp-trace.json").read_text())
jobs = [e for e in runner["traceEvents"] if e["name"] == "runner.job"]
assert len(jobs) == 126, len(jobs)

# The simulator trace shows the Fig. 4 split for the M scheme.
sim = json.loads((work / "sim-trace.json").read_text())
drains = [e for e in sim["traceEvents"] if e["name"] == "secpb.drain"]
assert drains and drains[0]["args"]["late_steps"] == ["mac"]

# Prometheus text: every line is a comment or `name[{labels}] value`.
for name, needle in (
    ("exp.prom", "# TYPE runner_tasks_completed counter"),
    ("sim.prom", "# TYPE sim_cycles counter"),
):
    text = (work / name).read_text()
    assert needle in text, name
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        metric, value = line.rsplit(None, 1)
        float(value)
        assert metric[0].isalpha() or metric[0] == "_", line
EOF

echo "obs-smoke: OK (instrumented run byte-identical, exports validate)"
