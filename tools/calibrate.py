"""Calibration helper: per-benchmark stats + scheme overheads."""
import sys, time
from repro.core.simulator import SecurePersistencySimulator
from repro.core.schemes import get_scheme
from repro.sim.config import SystemConfig
from repro.workloads.spec import all_benchmarks, build_trace

num_ops = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
warm = 0.3
config = SystemConfig()
schemes = ['cobcm','obcm','bcm','cm','nogap']
sims = {s: SecurePersistencySimulator(config=config, scheme=get_scheme(s)) for s in schemes}
bbb = SecurePersistencySimulator(config=config, scheme=None)
print(f"{'bench':12s} {'ppti':>6s} {'nwpe':>6s} {'bipc':>5s} " + " ".join(f"{s:>8s}" for s in schemes))
import math
logs = {s: 0.0 for s in schemes}
for b in all_benchmarks():
    tr = build_trace(b, num_ops, 1)
    base = bbb.run(tr, warm)
    row = []
    for s in schemes:
        r = sims[s].run(tr, warm)
        ov = r.overhead_pct_vs(base)
        logs[s] += math.log(1 + ov/100.0)
        row.append(ov)
    print(f"{b:12s} {base.stats['ppti']:6.1f} {base.stats['nwpe']:6.1f} {base.ipc:5.2f} " + " ".join(f"{v:8.1f}" for v in row))
n = len(all_benchmarks())
print(f"{'GEOMEAN':12s} {'':6s} {'':6s} {'':5s} " + " ".join(f"{(math.exp(logs[s]/n)-1)*100:8.1f}" for s in schemes))
print("paper:       cobcm 1.3  obcm 1.5  bcm 14.8  cm 71.3  nogap 118.4")
