#!/usr/bin/env python3
"""Assemble benchmarks/results/*.txt into a single REPORT.md.

Run after ``pytest benchmarks/ --benchmark-only``:

    python tools/make_report.py [output.md]
"""

from __future__ import annotations

import os
import sys
from datetime import date

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "results")

SECTIONS = [
    ("Paper artifacts", ["table4", "fig6", "table5", "table6", "fig7", "fig8", "fig9"]),
    (
        "Ablations",
        [
            "ablation_coalescing",
            "ablation_watermark",
            "ablation_store_buffer",
            "ablation_speculation",
            "ablation_sensitivity",
        ],
    ),
    (
        "Extensions",
        [
            "ext_design_space",
            "ext_multicore",
            "ext_recovery_time",
            "ext_persistency",
            "ext_integrity_structures",
            "ext_counter_overflow",
            "ext_crash_policies",
            "ext_device_models",
        ],
    ),
]


def main() -> int:
    output = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(__file__), "..", "REPORT.md"
    )
    parts = [
        "# SecPB reproduction — generated results",
        "",
        f"Assembled {date.today().isoformat()} from `benchmarks/results/`.",
        "Regenerate with `pytest benchmarks/ --benchmark-only && python tools/make_report.py`.",
    ]
    missing = []
    for section, names in SECTIONS:
        parts += ["", f"## {section}"]
        for name in names:
            path = os.path.join(RESULTS_DIR, f"{name}.txt")
            if not os.path.exists(path):
                missing.append(name)
                continue
            with open(path) as handle:
                body = handle.read().rstrip()
            parts += ["", f"### {name}", "", "```", body, "```"]
    if missing:
        parts += ["", f"_Missing artifacts (not yet run): {', '.join(missing)}_"]
    with open(output, "w") as handle:
        handle.write("\n".join(parts) + "\n")
    print(f"wrote {output} ({len(parts)} sections, {len(missing)} missing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
