#!/bin/sh
# serve-smoke: the CI gate for the serving frontend (ISSUE 10).
#
# Exercises the full `repro serve` lifecycle end to end:
#   1. a real server on a Unix socket answers health/stats and a seeded
#      burst whose every result must be byte-identical to running the
#      same jobs directly through run_jobs;
#   2. SIGTERM mid-burst drains gracefully — in-flight work finishes,
#      the queued remainder is journaled, the server exits 75, zero
#      /dev/shm trace-segment residue survives, and --resume-drain
#      replays the journal;
#   3. an in-process overload + breaker pass asserts the deterministic
#      accept/shed partition of an undersized queue and a full breaker
#      closed -> open -> half-open -> closed cycle under an injected
#      worker-SIGKILL storm (on a ManualClock, so no real cooldown).
#
# Usage: tools/serve_smoke.sh  (from the repo root; needs PYTHONPATH=src)
set -eu

PYTHON="${PYTHON:-python}"
WORK="$(mktemp -d)"
SOCK="$WORK/serve.sock"
trap 'rm -rf "$WORK"' EXIT

echo "serve-smoke: starting server on $SOCK"
$PYTHON -m repro serve --socket "$SOCK" --workers 2 --queue-depth 32 \
    --drain-journal "$WORK/drain.jsonl" &
SRV=$!

$PYTHON - "$SOCK" <<'EOF'
import os, sys, time
sock = sys.argv[1]
deadline = time.monotonic() + 60
while not os.path.exists(sock):
    assert time.monotonic() < deadline, "serve socket never appeared"
    time.sleep(0.05)
EOF

echo "serve-smoke: health, seeded burst, stats over the socket"
$PYTHON -m repro serve --socket "$SOCK" --health > /dev/null
$PYTHON -m repro serve --socket "$SOCK" --burst 12 --num-ops 300 \
    --save "$WORK/burst.json"
$PYTHON -m repro serve --socket "$SOCK" --stats > "$WORK/stats.json"

echo "serve-smoke: served results byte-identical to direct run_jobs"
$PYTHON - "$WORK/burst.json" <<'EOF'
import json, sys
from repro.analysis.runner import run_jobs
from repro.serve import build_jobs, results_payload, seeded_burst

responses = json.loads(open(sys.argv[1]).read())
requests = {r.id: r for r in seeded_burst(2023, 12, num_ops=300)}
assert set(responses) == set(requests), "burst responses incomplete"
for rid in sorted(responses):
    response = responses[rid]
    assert response["status"] == "ok", (rid, response)
    jobs = build_jobs(requests[rid])
    reference = results_payload(jobs, run_jobs(
        jobs, workers=2 if len(jobs) > 1 else 1, on_error="raise", retries=0,
    ))
    served = json.dumps(response["results"], sort_keys=True)
    direct = json.dumps(reference, sort_keys=True)
    assert served == direct, f"{rid}: served results diverged from run_jobs"
print(f"  {len(responses)} request(s) byte-identical")
EOF

echo "serve-smoke: SIGTERM mid-burst -> graceful drain, exit 75"
$PYTHON -m repro serve --socket "$SOCK" --burst 12 --num-ops 120000 \
    --seed 7 --timeout 300 > "$WORK/drainburst.txt" &
CLI=$!
# Pull the plug once the queue is demonstrably deep.
$PYTHON - "$SOCK" <<'EOF'
import sys, time
from repro.serve import ServeClient
deadline = time.monotonic() + 60
with ServeClient(sys.argv[1]) as client:
    while True:
        stats = client.stats()["stats"]
        if stats["queue_depth"] >= 4:
            break
        assert time.monotonic() < deadline, f"queue never filled: {stats}"
        time.sleep(0.05)
EOF
kill -TERM "$SRV"
wait "$CLI"
SRV_RC=0
wait "$SRV" || SRV_RC=$?
[ "$SRV_RC" -eq 75 ] || {
    echo "serve-smoke: FAIL - drained server exited $SRV_RC, wanted 75" >&2
    exit 1
}
grep -q "journaled" "$WORK/drainburst.txt" || {
    echo "serve-smoke: FAIL - no journaled responses in the drain burst" >&2
    exit 1
}

echo "serve-smoke: drain journal replays; zero /dev/shm residue"
$PYTHON -m repro serve --resume-drain "$WORK/drain.jsonl" --workers 2 \
    --save "$WORK/resumed.json" > "$WORK/resume.txt"
$PYTHON - "$WORK" <<'EOF'
import glob, json, sys
from pathlib import Path
from repro.runtime.shm import segment_prefix
from repro.serve import read_drained_requests

work = Path(sys.argv[1])
requests = read_drained_requests(work / "drain.jsonl")
assert requests, "drain journal is empty"
resumed = json.loads((work / "resumed.json").read_text())
assert list(resumed) == [r.id for r in requests], "resume missed requests"
summary = (work / "resume.txt").read_text()
assert f"resumed {len(requests)} drained request(s)" in summary, summary
residue = glob.glob(f"/dev/shm/{segment_prefix()}*")
assert not residue, f"leaked trace segments: {residue}"
print(f"  {len(requests)} journaled request(s) replayed")
EOF

echo "serve-smoke: in-process overload partition + breaker cycle"
$PYTHON - <<'EOF'
from repro.envfault import FaultPlan, FaultSpec, injected
from repro.resilience import (
    CLOSED, HALF_OPEN, OPEN, BreakerPolicy, ManualClock, RetryPolicy,
)
from repro.runtime.pool import shutdown_shared_pool
from repro.serve import (
    InProcessClient, ServeConfig, ServerCore, SimRequest, seeded_burst,
)

# Deterministic accept/shed partition: an undersized queue against a
# 100+ request burst admits exactly the prefix, twice over.
partitions = []
for _ in range(2):
    core = ServerCore(ServeConfig(queue_depth=8))
    client = InProcessClient(core)
    accepted = [
        r.id for r in seeded_burst(2023, 100, num_ops=250)
        if client.send(r) is None
    ]
    partitions.append(tuple(accepted))
assert partitions[0] == partitions[1] == tuple(
    f"r{i:04d}" for i in range(8)
), partitions
print("  partition deterministic: 8 accepted / 92 shed, twice")

# Breaker cycle under an injected worker-SIGKILL storm.
clock = ManualClock()
core = ServerCore(
    ServeConfig(
        workers=2, queue_depth=16, retries=0,
        breaker=BreakerPolicy(window=4, failure_rate=0.5, min_calls=2,
                              open_seconds=30.0),
        restart_backoff=RetryPolicy(attempts=3, base_delay=0.05,
                                    multiplier=4.0, jitter_frac=0.0),
    ),
    clock=clock,
)
core.start()
client = InProcessClient(core)

def sweep(rid):
    return SimRequest(id=rid, benchmarks=("mcf", "lbm"), scheme="cobcm",
                      num_ops=200)

shutdown_shared_pool(wait=False)
plan = FaultPlan(seed=0, specs=(
    FaultSpec(op="worker.task", index=0, kind="worker_sigkill", count=64),
))
try:
    with injected(plan):
        for rid in ("kill1", "kill2"):
            client.send(sweep(rid))
            assert client.collect(rid, timeout=120.0)["status"] == "error"
        breaker = core.breaker_for("cobcm")
        assert breaker.state == OPEN, breaker.state
        client.send(sweep("shedme"))
        shed = client.collect("shedme", timeout=30.0)
        assert shed["status"] == "shed" and shed["reason"] == "breaker_open"
finally:
    shutdown_shared_pool(wait=False)
clock.advance(31.0)
client.send(sweep("probe"))
assert client.collect("probe", timeout=120.0)["status"] == "ok"
breaker = core.breaker_for("cobcm")
assert breaker.transitions == [
    (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED),
], breaker.transitions
core.stop()
print("  breaker: closed -> open -> half-open -> closed under sigkill storm")
EOF

echo "serve-smoke: OK (burst byte-identical, drain resumable, breaker cycled)"
